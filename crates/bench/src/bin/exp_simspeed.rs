//! Simulation-speed shootout for the faulty-multiplier workload: the
//! same stream of multiplications evaluated by every settle strategy
//! the engine supports, slowest to fastest.
//!
//! * `switch` — the seed's uncached switch-level evaluator (every
//!   faulty gate re-solved through its transistor network per settle);
//! * `compiled` — PR 1's memoized truth tables swept with the compiled
//!   full schedule (every gate evaluated every settle);
//! * `event` — differential settle: only gates whose inputs changed
//!   are re-evaluated, seeded from the per-gate fan-out lists;
//! * `cone` — cone-of-influence pruning: a healthy 64-lane twin
//!   settles 64 rows per pass and only the union fan-out cone of the
//!   faulty gates is gate-simulated per row;
//! * `batch64` — the lane-parallel simulator with faulty truth tables
//!   broadcast across lanes (combinational fault sets only);
//! * `lut` — the compiled LUT instruction stream: the netlist is
//!   topologically ranked once into straight-line table-lookup
//!   instructions, permanent faults patch truth words in place, and
//!   dynamic faults drop only the affected instructions to per-lane
//!   evaluation (works for every activation class).
//!
//! Every strategy must produce bit-identical products; the binary
//! asserts this before reporting throughput. The stimulus mimics the
//! training inner loop: a fixed weight operand and a varying data
//! operand.
//!
//! A second, network-level shootout runs the **whole faulty forward
//! pass** of an MLP under three engines: `scalar` (the per-sample
//! event-driven reference), `lut` (the per-operator batch ladder with
//! the fused engine disabled), and `fused` (`dta_ann::FusedForward` —
//! the entire pass compiled into one optimized LUT instruction stream).
//! All three must agree bit-for-bit; the headline is
//! `min_speedup_fused_vs_lut` (CI floor >= 1.2x).
//!
//! A strategy that *refuses* a configuration (batch64 or fused on a
//! non-vectorizable fault set, per-op lut batch on stateful activation
//! classes) is reported as `null` in the JSON record and `-` in the
//! table — never as a measured `0.0`.
//!
//! ```sh
//! cargo run --release -p dta-bench --bin exp_simspeed
//! cargo run --release -p dta-bench --bin exp_simspeed -- --rows 8192 --defects 1,2,4,8
//! cargo run --release -p dta-bench --bin exp_simspeed -- --smoke true
//! cargo run --release -p dta-bench --bin exp_simspeed -- --breakdown true
//! ```
//!
//! A machine-readable record goes to `BENCH_simspeed.json`
//! (`--bench-out` overrides), including the headline
//! `min_speedup_cone_vs_compiled` (acceptance gate >= 3x),
//! `min_speedup_lut_vs_compiled`, and `min_speedup_fused_vs_lut`
//! (CI floors, see `.github/workflows`). `--breakdown true` adds
//! compile-vs-execute timing and memoization hit rates for the lut and
//! fused strategies.

use std::sync::Arc;
use std::time::Instant;

use dta_ann::{disable_fused_engine, FaultPlan, FusedForward, Mlp, Topology};
use dta_bench::{rule, Args, JsonMap};
use dta_circuits::{Activation, DefectPlan, FaultModel, FxMulCircuit};
use dta_fixed::{Fx, SigmoidLut};
use dta_logic::force_full_settle;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// One measured strategy: name, throughput, and the products it
/// computed (for the cross-strategy identity check).
struct Measurement {
    name: &'static str,
    evals_per_s: f64,
    out: Vec<Fx>,
}

fn time_run(rows: usize, f: impl FnOnce() -> Vec<Fx>) -> (f64, Vec<Fx>) {
    let started = Instant::now();
    let out = f();
    let t = started.elapsed().as_secs_f64();
    (rows as f64 / t, out)
}

/// Builds a fresh defect plan with `n` defects. Rebuilding (rather
/// than reusing) gives every strategy its own activation-stream state,
/// so transient/intermittent runs replay the same per-eval sequence.
fn build_plan(mul: &FxMulCircuit, n: usize, activation: Activation, seed: u64) -> DefectPlan {
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ (n as u64) << 24);
    let mut plan = DefectPlan::new(FaultModel::TransistorLevel);
    for _ in 0..n {
        plan.add_random_with(mul.netlist(), mul.cells(), activation, &mut rng);
    }
    plan
}

fn main() {
    let args = Args::parse();
    let smoke = args.get_bool("smoke", false);
    let rows = args.get("rows", if smoke { 256 } else { 4096usize });
    let default_counts: &[usize] = if smoke { &[2] } else { &[1, 2, 4, 8] };
    let defect_counts = args.get_usize_list("defects", default_counts);
    let seed = args.get("seed", 0x51E5Du64);
    let activation = match args.get_str_list("activation", &["permanent"])[0].as_str() {
        "transient" => Activation::Transient {
            per_eval_probability: 0.5,
        },
        "intermittent" => Activation::Intermittent { period: 8, duty: 3 },
        _ => Activation::Permanent,
    };
    let measure_switch = args.get_bool("switch", !smoke);

    let mul = FxMulCircuit::new();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let weight = Fx::from_f64(0.37);
    // Two stimulus classes against the same fixed weight operand:
    // `dense` is the training inner loop (a fresh data operand every
    // row, most of the circuit toggles), `sparse` flips one data bit
    // per row (diagnosis probes, quiescent sensors) — the event-driven
    // sweet spot.
    let dense: Vec<Fx> = (0..rows)
        .map(|_| Fx::from_raw(rng.random::<i16>()))
        .collect();
    let mut walker = Fx::from_f64(0.5).to_bits();
    let sparse: Vec<Fx> = (0..rows)
        .map(|i| {
            walker ^= 1 << (i % 16);
            Fx::from_bits(walker)
        })
        .collect();
    let b = vec![weight; rows];

    println!("Simulation speed — faulty 16-bit multiplier, {rows} rows, {activation:?} defects");
    println!("(evals/s; every strategy is bit-identical to the seed's switch-level path)\n");

    let measure = |stim: &str, a: &[Fx]| -> Vec<(usize, Vec<Measurement>, f64, f64)> {
        print!("{:<18}", format!("{stim}/defects"));
        for name in ["switch", "compiled", "event", "cone", "batch64", "lut"] {
            print!("{name:>12}");
        }
        print!("{:>12}", "cone/comp");
        println!("{:>12}", "lut/comp");
        rule(18 + 12 * 8);

        let mut per_count: Vec<(usize, Vec<Measurement>, f64, f64)> = Vec::new();
        for &n in &defect_counts {
            let mut ms: Vec<Measurement> = Vec::new();

            if measure_switch {
                let mut sim = mul.simulator();
                build_plan(&mul, n, activation, seed).apply_switch_level(&mut sim);
                let (evals_per_s, out) = time_run(rows, || {
                    a.iter()
                        .zip(&b)
                        .map(|(&x, &w)| mul.compute(&mut sim, x, w))
                        .collect()
                });
                ms.push(Measurement {
                    name: "switch",
                    evals_per_s,
                    out,
                });
            }

            {
                // PR 1 baseline: memoized truth tables, compiled sweep.
                force_full_settle(true);
                let mut sim = mul.simulator();
                force_full_settle(false);
                build_plan(&mul, n, activation, seed).apply(&mut sim);
                let (evals_per_s, out) = time_run(rows, || {
                    a.iter()
                        .zip(&b)
                        .map(|(&x, &w)| mul.compute(&mut sim, x, w))
                        .collect()
                });
                ms.push(Measurement {
                    name: "compiled",
                    evals_per_s,
                    out,
                });
            }

            {
                let mut sim = mul.simulator();
                build_plan(&mul, n, activation, seed).apply(&mut sim);
                let (evals_per_s, out) = time_run(rows, || {
                    a.iter()
                        .zip(&b)
                        .map(|(&x, &w)| mul.compute(&mut sim, x, w))
                        .collect()
                });
                ms.push(Measurement {
                    name: "event",
                    evals_per_s,
                    out,
                });
            }

            {
                let mut sim = mul.simulator();
                build_plan(&mul, n, activation, seed).apply(&mut sim);
                assert!(sim.prepare_cone(), "faulty multiplier must yield a cone");
                let mut healthy = mul.simulator64();
                let (evals_per_s, out) =
                    time_run(rows, || mul.compute_cone(&mut sim, &mut healthy, a, &b));
                ms.push(Measurement {
                    name: "cone",
                    evals_per_s,
                    out,
                });
            }

            {
                let mut sim64 = mul.simulator64();
                if build_plan(&mul, n, activation, seed).apply64(&mut sim64) {
                    let (evals_per_s, out) = time_run(rows, || mul.compute64(&mut sim64, a, &b));
                    ms.push(Measurement {
                        name: "batch64",
                        evals_per_s,
                        out,
                    });
                }
            }

            {
                // The compiled LUT instruction stream handles every
                // activation class: permanent faults as in-place truth
                // word patches, dynamic ones as per-lane overrides.
                let mut ex = mul.lut_exec();
                build_plan(&mul, n, activation, seed).apply_lut(&mut ex);
                let (evals_per_s, out) = time_run(rows, || mul.compute_lut(&mut ex, a, &b));
                ms.push(Measurement {
                    name: "lut",
                    evals_per_s,
                    out,
                });
            }

            let reference = &ms[0];
            for m in &ms[1..] {
                assert_eq!(
                    m.out, reference.out,
                    "{} diverged from {} at {n} defects ({stim})",
                    m.name, reference.name
                );
            }

            let rate = |name: &str| ms.iter().find(|m| m.name == name).map(|m| m.evals_per_s);
            let cone_vs_compiled = rate("cone").unwrap() / rate("compiled").unwrap();
            let lut_vs_compiled = rate("lut").unwrap() / rate("compiled").unwrap();
            print!("{n:<18}");
            for name in ["switch", "compiled", "event", "cone", "batch64", "lut"] {
                match rate(name) {
                    Some(r) => print!("{r:>12.0}"),
                    None => print!("{:>12}", "-"),
                }
            }
            print!("{cone_vs_compiled:>11.1}x");
            println!("{lut_vs_compiled:>11.1}x");
            per_count.push((n, ms, cone_vs_compiled, lut_vs_compiled));
        }
        println!();
        per_count
    };

    let dense_counts = measure("dense", &dense);
    let sparse_counts = measure("sparse", &sparse);

    // ------------------------------------------------------------------
    // Network-level: the whole faulty forward pass under three engines.
    // ------------------------------------------------------------------
    let breakdown = args.get_bool("breakdown", false);
    // The network section stays at full row count even under --smoke:
    // it finishes in under a second, and the fused-vs-lut floor is only
    // meaningful once per-batch setup costs are amortized.
    let net_rows = args.get("net-rows", 2048usize);
    // Throughput is best-of-N so a descheduled timeslice can't turn
    // into a phantom slowdown on loaded machines.
    let net_reps = args.get("reps", 3usize);
    // Defect counts for a whole network are an order of magnitude above
    // the single-operator grid: one defect per ~hundred gates is the
    // trivial regime where both engines are dominated by the shared
    // native arithmetic; the fused stream's elimination of per-operator
    // dispatch and repacking pays off on defect-loaded networks, the
    // paper's regime of interest.
    let net_default: &[usize] = if smoke { &[8] } else { &[8, 16, 32] };
    let net_counts = args.get_usize_list("net-defects", net_default);
    let topo = Topology::new(8, 8, 4);
    let mlp = Mlp::new(topo, seed ^ 0xA5);
    let siglut = SigmoidLut::new();
    let xs: Vec<Vec<f64>> = (0..net_rows)
        .map(|r| {
            (0..topo.inputs)
                .map(|i| ((r * 7 + i * 3) % 23) as f64 / 11.5 - 1.0)
                .collect()
        })
        .collect();

    // Rebuild the plan per strategy from the same injection-seed list
    // so each run replays the same activation stream (mirrors
    // `build_plan`).
    let build_net_plan = |seeds: &[u64]| -> FaultPlan {
        let mut plan = FaultPlan::new(topo.inputs + 2);
        for &s in seeds {
            let mut rng = ChaCha8Rng::seed_from_u64(s);
            plan.inject_random_hidden_with(
                topo.hidden,
                FaultModel::TransistorLevel,
                activation,
                &mut rng,
            );
        }
        plan
    };
    // Transistor-level injections are not always patchable, and a
    // whole-plan rebuild is only batchable when *every* injection is —
    // rejection-sample injection by injection so dense plans stay
    // measurable. Stateful activation classes are never vectorizable,
    // so their rows refuse entirely (scalar reference only).
    let vectorizable_seeds = |n: usize| -> Option<Vec<u64>> {
        let mut accepted: Vec<u64> = Vec::new();
        let mut cand = seed ^ ((n as u64) << 32);
        for _ in 0..64 * n {
            if accepted.len() == n {
                break;
            }
            accepted.push(cand);
            if !build_net_plan(&accepted).vectorizable() {
                accepted.pop();
            }
            cand = cand.wrapping_add(0x9E37_79B9_7F4A_7C15);
        }
        (accepted.len() == n).then_some(accepted)
    };

    println!(
        "\nNetwork forward pass — {}x{}x{} MLP, {net_rows} rows, {activation:?} defects",
        topo.inputs, topo.hidden, topo.outputs
    );
    println!("(network evals/s; `-` = strategy refuses this configuration)\n");
    print!("{:<18}", "defects");
    for name in ["scalar", "lut", "fused"] {
        print!("{name:>12}");
    }
    println!("{:>12}", "fused/lut");
    rule(18 + 12 * 4);

    let mut net_scalar: Vec<f64> = Vec::new();
    let mut net_lut: Vec<f64> = Vec::new();
    let mut net_fused: Vec<f64> = Vec::new();
    let mut net_speedup: Vec<f64> = Vec::new();
    let mut fused_breakdown: Vec<(usize, f64, f64, f64)> = Vec::new();
    for &n in &net_counts {
        let seeds = vectorizable_seeds(n);
        let fallback: Vec<u64> = (0..n as u64)
            .map(|i| seed ^ ((n as u64) << 32) ^ i.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .collect();
        let seeds_or = seeds.as_deref().unwrap_or(&fallback);
        let fusable =
            seeds.is_some() && FusedForward::compile(&mlp, &build_net_plan(seeds_or)).is_some();

        // Per-sample event-driven reference — always measurable.
        let mut r_scalar = f64::NAN;
        let mut scalar_out = Vec::new();
        for _ in 0..net_reps {
            let mut plan = build_net_plan(seeds_or);
            let started = Instant::now();
            scalar_out = xs
                .iter()
                .map(|x| mlp.forward_faulty(x, &siglut, &mut plan))
                .collect();
            r_scalar = r_scalar.max(net_rows as f64 / started.elapsed().as_secs_f64());
        }
        net_scalar.push(r_scalar);

        // Per-operator batch ladder (fused engine off). Refuses
        // stateful plans: the batch path would just replay the scalar
        // loop, which is not a distinct strategy.
        let r_lut = if seeds.is_some() {
            disable_fused_engine(true);
            let mut r = f64::NAN;
            for _ in 0..net_reps {
                let mut plan = build_net_plan(seeds_or);
                let started = Instant::now();
                let out = mlp.forward_faulty_batch(&xs, &siglut, &mut plan);
                r = r.max(net_rows as f64 / started.elapsed().as_secs_f64());
                assert_eq!(out, scalar_out, "per-op lut batch diverged at {n} defects");
            }
            disable_fused_engine(false);
            r
        } else {
            f64::NAN
        };
        net_lut.push(r_lut);

        // Fused network engine. Warm the memo first so the timed run
        // measures the amortized path; compilation is reported
        // separately under --breakdown.
        let r_fused = match fusable {
            true => {
                let mut plan = build_net_plan(seeds_or);
                let ff = FusedForward::cached(&mlp, &plan).expect("scanned plan must fuse");
                let mut r = f64::NAN;
                for _ in 0..net_reps {
                    let started = Instant::now();
                    let out = mlp.forward_faulty_batch(&xs, &siglut, &mut plan);
                    r = r.max(net_rows as f64 / started.elapsed().as_secs_f64());
                    assert_eq!(out, scalar_out, "fused stream diverged at {n} defects");
                }
                if breakdown {
                    dta_ann::clear_fused_cache();
                    let t = Instant::now();
                    let cold = FusedForward::cached(&mlp, &plan).expect("recompile");
                    let compile_ms = t.elapsed().as_secs_f64() * 1e3;
                    let t = Instant::now();
                    let _warm = FusedForward::cached(&mlp, &plan).expect("memo hit");
                    let hit_ms = t.elapsed().as_secs_f64() * 1e3;
                    let t = Instant::now();
                    let out2 = cold.forward(&mlp, &xs, &siglut, &mut plan);
                    let exec_ms = t.elapsed().as_secs_f64() * 1e3;
                    assert_eq!(out2, scalar_out, "breakdown run diverged at {n} defects");
                    fused_breakdown.push((n, compile_ms, hit_ms, exec_ms));
                }
                drop(ff);
                r
            }
            false => f64::NAN,
        };
        net_fused.push(r_fused);

        let speedup = r_fused / r_lut; // NaN propagates refusals
        net_speedup.push(speedup);
        print!("{n:<18}");
        for r in [r_scalar, r_lut, r_fused] {
            if r.is_finite() {
                print!("{r:>12.0}");
            } else {
                print!("{:>12}", "-");
            }
        }
        if speedup.is_finite() {
            println!("{speedup:>11.1}x");
        } else {
            println!("{:>12}", "-");
        }
    }
    println!();

    let min_speedup_fused = net_speedup
        .iter()
        .copied()
        .filter(|s| s.is_finite())
        .fold(f64::INFINITY, f64::min);
    let min_speedup_fused = if min_speedup_fused.is_finite() {
        println!(
            "fused network stream vs per-operator lut ladder: >= {min_speedup_fused:.1}x \
             at every measured defect count (CI floor: 1.2x)"
        );
        min_speedup_fused
    } else {
        println!("fused network stream: no measurable configuration (all refused)");
        f64::NAN
    };

    if breakdown {
        let (ph, pm) = dta_logic::program_cache_stats();
        let (fh, fm) = dta_ann::fused_cache_stats();
        let t = Instant::now();
        let _ = dta_logic::LutProgram::compile(Arc::clone(mul.netlist()));
        let lut_compile_ms = t.elapsed().as_secs_f64() * 1e3;
        println!("compilation amortization (--breakdown):");
        println!(
            "  per-op lut : one program compile {lut_compile_ms:.2} ms; \
             memo {ph} hits / {pm} misses ({})",
            dta_bench::pct(ph as f64 / (ph + pm).max(1) as f64)
        );
        for &(n, c, h, e) in &fused_breakdown {
            println!(
                "  fused n={n:<3}: compile {c:.2} ms, memo hit {h:.3} ms, execute {e:.2} ms \
                 ({:.1} us/row over {net_rows} rows)",
                e * 1e3 / net_rows as f64
            );
        }
        println!(
            "  fused memo : {fh} hits / {fm} misses ({})\n",
            dta_bench::pct(fh as f64 / (fh + fm).max(1) as f64)
        );
    }

    // The acceptance gate runs on the dense (training-like) stimulus.
    let min_speedup = dense_counts
        .iter()
        .map(|&(_, _, s, _)| s)
        .fold(f64::INFINITY, f64::min);
    println!(
        "cone-pruned differential settle vs compiled full sweep (dense): >= {min_speedup:.1}x \
         at every defect count (acceptance gate: 3x)"
    );
    let min_speedup_lut = dense_counts
        .iter()
        .map(|&(_, _, _, s)| s)
        .fold(f64::INFINITY, f64::min);
    println!(
        "LUT instruction stream vs compiled full sweep (dense): >= {min_speedup_lut:.1}x \
         at every defect count"
    );

    // A strategy that refused a configuration has no measurement; NaN
    // renders as JSON `null`, so a dead strategy can never be confused
    // with a measured zero.
    let rates = |per_count: &[(usize, Vec<Measurement>, f64, f64)], name: &str| -> Vec<f64> {
        per_count
            .iter()
            .map(|(_, ms, _, _)| {
                ms.iter()
                    .find(|m| m.name == name)
                    .map_or(f64::NAN, |m| m.evals_per_s)
            })
            .collect()
    };
    let out_path = args.get("bench-out", "BENCH_simspeed.json".to_string());
    let mut record = JsonMap::new()
        .str("bin", "exp_simspeed")
        .str(
            "activation",
            args.get_str_list("activation", &["permanent"])[0].as_str(),
        )
        .int("rows", rows as u64)
        .int_list("defect_counts", &defect_counts);
    for (suffix, per_count) in [("", &dense_counts), ("_sparse", &sparse_counts)] {
        for name in ["switch", "compiled", "event", "cone", "batch64", "lut"] {
            let rs = rates(per_count, name);
            if rs.iter().any(|r| r.is_finite()) {
                record = record.num_list(&format!("evals_per_s_{name}{suffix}"), &rs);
            }
        }
    }
    record = record
        .num_list(
            "speedup_cone_vs_compiled",
            &dense_counts
                .iter()
                .map(|&(_, _, s, _)| s)
                .collect::<Vec<_>>(),
        )
        .num("min_speedup_cone_vs_compiled", min_speedup)
        .num_list(
            "speedup_lut_vs_compiled",
            &dense_counts
                .iter()
                .map(|&(_, _, _, s)| s)
                .collect::<Vec<_>>(),
        )
        .num("min_speedup_lut_vs_compiled", min_speedup_lut);
    // Network-level engines. Refused configurations are `null`, never
    // 0.0 (see EXPERIMENTS.md for the refusal rule).
    record = record
        .str(
            "net_topology",
            &format!("{}x{}x{}", topo.inputs, topo.hidden, topo.outputs),
        )
        .int("net_rows", net_rows as u64)
        .num_list("evals_per_s_scalar_net", &net_scalar)
        .num_list("evals_per_s_lut_net", &net_lut)
        .num_list("evals_per_s_fused_net", &net_fused)
        .num_list("speedup_fused_vs_lut", &net_speedup)
        .num("min_speedup_fused_vs_lut", min_speedup_fused);
    if breakdown {
        let (ph, pm) = dta_logic::program_cache_stats();
        let (fh, fm) = dta_ann::fused_cache_stats();
        record = record
            .num_list(
                "fused_compile_ms",
                &fused_breakdown
                    .iter()
                    .map(|&(_, c, _, _)| c)
                    .collect::<Vec<_>>(),
            )
            .num_list(
                "fused_memo_hit_ms",
                &fused_breakdown
                    .iter()
                    .map(|&(_, _, h, _)| h)
                    .collect::<Vec<_>>(),
            )
            .num_list(
                "fused_exec_ms",
                &fused_breakdown
                    .iter()
                    .map(|&(_, _, _, e)| e)
                    .collect::<Vec<_>>(),
            )
            .num(
                "program_cache_hit_rate",
                ph as f64 / (ph + pm).max(1) as f64,
            )
            .num("fused_cache_hit_rate", fh as f64 / (fh + fm).max(1) as f64);
    }
    match record.write(&out_path) {
        Ok(()) => println!("perf record written to {out_path}"),
        Err(e) => eprintln!("could not write {out_path}: {e}"),
    }
}
