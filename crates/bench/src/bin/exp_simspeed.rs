//! Simulation-speed shootout for the faulty-multiplier workload: the
//! same stream of multiplications evaluated by every settle strategy
//! the engine supports, slowest to fastest.
//!
//! * `switch` — the seed's uncached switch-level evaluator (every
//!   faulty gate re-solved through its transistor network per settle);
//! * `compiled` — PR 1's memoized truth tables swept with the compiled
//!   full schedule (every gate evaluated every settle);
//! * `event` — differential settle: only gates whose inputs changed
//!   are re-evaluated, seeded from the per-gate fan-out lists;
//! * `cone` — cone-of-influence pruning: a healthy 64-lane twin
//!   settles 64 rows per pass and only the union fan-out cone of the
//!   faulty gates is gate-simulated per row;
//! * `batch64` — the lane-parallel simulator with faulty truth tables
//!   broadcast across lanes (combinational fault sets only);
//! * `lut` — the compiled LUT instruction stream: the netlist is
//!   topologically ranked once into straight-line table-lookup
//!   instructions, permanent faults patch truth words in place, and
//!   dynamic faults drop only the affected instructions to per-lane
//!   evaluation (works for every activation class).
//!
//! Every strategy must produce bit-identical products; the binary
//! asserts this before reporting throughput. The stimulus mimics the
//! training inner loop: a fixed weight operand and a varying data
//! operand.
//!
//! ```sh
//! cargo run --release -p dta-bench --bin exp_simspeed
//! cargo run --release -p dta-bench --bin exp_simspeed -- --rows 8192 --defects 1,2,4,8
//! cargo run --release -p dta-bench --bin exp_simspeed -- --smoke true
//! ```
//!
//! A machine-readable record goes to `BENCH_simspeed.json`
//! (`--bench-out` overrides), including the headline
//! `min_speedup_cone_vs_compiled` (acceptance gate >= 3x) and
//! `min_speedup_lut_vs_compiled` (CI floor, see `.github/workflows`).

use std::time::Instant;

use dta_bench::{rule, Args, JsonMap};
use dta_circuits::{Activation, DefectPlan, FaultModel, FxMulCircuit};
use dta_fixed::Fx;
use dta_logic::force_full_settle;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// One measured strategy: name, throughput, and the products it
/// computed (for the cross-strategy identity check).
struct Measurement {
    name: &'static str,
    evals_per_s: f64,
    out: Vec<Fx>,
}

fn time_run(rows: usize, f: impl FnOnce() -> Vec<Fx>) -> (f64, Vec<Fx>) {
    let started = Instant::now();
    let out = f();
    let t = started.elapsed().as_secs_f64();
    (rows as f64 / t, out)
}

/// Builds a fresh defect plan with `n` defects. Rebuilding (rather
/// than reusing) gives every strategy its own activation-stream state,
/// so transient/intermittent runs replay the same per-eval sequence.
fn build_plan(mul: &FxMulCircuit, n: usize, activation: Activation, seed: u64) -> DefectPlan {
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ (n as u64) << 24);
    let mut plan = DefectPlan::new(FaultModel::TransistorLevel);
    for _ in 0..n {
        plan.add_random_with(mul.netlist(), mul.cells(), activation, &mut rng);
    }
    plan
}

fn main() {
    let args = Args::parse();
    let smoke = args.get_bool("smoke", false);
    let rows = args.get("rows", if smoke { 256 } else { 4096usize });
    let default_counts: &[usize] = if smoke { &[2] } else { &[1, 2, 4, 8] };
    let defect_counts = args.get_usize_list("defects", default_counts);
    let seed = args.get("seed", 0x51E5Du64);
    let activation = match args.get_str_list("activation", &["permanent"])[0].as_str() {
        "transient" => Activation::Transient {
            per_eval_probability: 0.5,
        },
        "intermittent" => Activation::Intermittent { period: 8, duty: 3 },
        _ => Activation::Permanent,
    };
    let measure_switch = args.get_bool("switch", !smoke);

    let mul = FxMulCircuit::new();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let weight = Fx::from_f64(0.37);
    // Two stimulus classes against the same fixed weight operand:
    // `dense` is the training inner loop (a fresh data operand every
    // row, most of the circuit toggles), `sparse` flips one data bit
    // per row (diagnosis probes, quiescent sensors) — the event-driven
    // sweet spot.
    let dense: Vec<Fx> = (0..rows)
        .map(|_| Fx::from_raw(rng.random::<i16>()))
        .collect();
    let mut walker = Fx::from_f64(0.5).to_bits();
    let sparse: Vec<Fx> = (0..rows)
        .map(|i| {
            walker ^= 1 << (i % 16);
            Fx::from_bits(walker)
        })
        .collect();
    let b = vec![weight; rows];

    println!("Simulation speed — faulty 16-bit multiplier, {rows} rows, {activation:?} defects");
    println!("(evals/s; every strategy is bit-identical to the seed's switch-level path)\n");

    let measure = |stim: &str, a: &[Fx]| -> Vec<(usize, Vec<Measurement>, f64, f64)> {
        print!("{:<18}", format!("{stim}/defects"));
        for name in ["switch", "compiled", "event", "cone", "batch64", "lut"] {
            print!("{name:>12}");
        }
        print!("{:>12}", "cone/comp");
        println!("{:>12}", "lut/comp");
        rule(18 + 12 * 8);

        let mut per_count: Vec<(usize, Vec<Measurement>, f64, f64)> = Vec::new();
        for &n in &defect_counts {
            let mut ms: Vec<Measurement> = Vec::new();

            if measure_switch {
                let mut sim = mul.simulator();
                build_plan(&mul, n, activation, seed).apply_switch_level(&mut sim);
                let (evals_per_s, out) = time_run(rows, || {
                    a.iter()
                        .zip(&b)
                        .map(|(&x, &w)| mul.compute(&mut sim, x, w))
                        .collect()
                });
                ms.push(Measurement {
                    name: "switch",
                    evals_per_s,
                    out,
                });
            }

            {
                // PR 1 baseline: memoized truth tables, compiled sweep.
                force_full_settle(true);
                let mut sim = mul.simulator();
                force_full_settle(false);
                build_plan(&mul, n, activation, seed).apply(&mut sim);
                let (evals_per_s, out) = time_run(rows, || {
                    a.iter()
                        .zip(&b)
                        .map(|(&x, &w)| mul.compute(&mut sim, x, w))
                        .collect()
                });
                ms.push(Measurement {
                    name: "compiled",
                    evals_per_s,
                    out,
                });
            }

            {
                let mut sim = mul.simulator();
                build_plan(&mul, n, activation, seed).apply(&mut sim);
                let (evals_per_s, out) = time_run(rows, || {
                    a.iter()
                        .zip(&b)
                        .map(|(&x, &w)| mul.compute(&mut sim, x, w))
                        .collect()
                });
                ms.push(Measurement {
                    name: "event",
                    evals_per_s,
                    out,
                });
            }

            {
                let mut sim = mul.simulator();
                build_plan(&mul, n, activation, seed).apply(&mut sim);
                assert!(sim.prepare_cone(), "faulty multiplier must yield a cone");
                let mut healthy = mul.simulator64();
                let (evals_per_s, out) =
                    time_run(rows, || mul.compute_cone(&mut sim, &mut healthy, a, &b));
                ms.push(Measurement {
                    name: "cone",
                    evals_per_s,
                    out,
                });
            }

            {
                let mut sim64 = mul.simulator64();
                if build_plan(&mul, n, activation, seed).apply64(&mut sim64) {
                    let (evals_per_s, out) = time_run(rows, || mul.compute64(&mut sim64, a, &b));
                    ms.push(Measurement {
                        name: "batch64",
                        evals_per_s,
                        out,
                    });
                }
            }

            {
                // The compiled LUT instruction stream handles every
                // activation class: permanent faults as in-place truth
                // word patches, dynamic ones as per-lane overrides.
                let mut ex = mul.lut_exec();
                build_plan(&mul, n, activation, seed).apply_lut(&mut ex);
                let (evals_per_s, out) = time_run(rows, || mul.compute_lut(&mut ex, a, &b));
                ms.push(Measurement {
                    name: "lut",
                    evals_per_s,
                    out,
                });
            }

            let reference = &ms[0];
            for m in &ms[1..] {
                assert_eq!(
                    m.out, reference.out,
                    "{} diverged from {} at {n} defects ({stim})",
                    m.name, reference.name
                );
            }

            let rate = |name: &str| ms.iter().find(|m| m.name == name).map(|m| m.evals_per_s);
            let cone_vs_compiled = rate("cone").unwrap() / rate("compiled").unwrap();
            let lut_vs_compiled = rate("lut").unwrap() / rate("compiled").unwrap();
            print!("{n:<18}");
            for name in ["switch", "compiled", "event", "cone", "batch64", "lut"] {
                match rate(name) {
                    Some(r) => print!("{r:>12.0}"),
                    None => print!("{:>12}", "-"),
                }
            }
            print!("{cone_vs_compiled:>11.1}x");
            println!("{lut_vs_compiled:>11.1}x");
            per_count.push((n, ms, cone_vs_compiled, lut_vs_compiled));
        }
        println!();
        per_count
    };

    let dense_counts = measure("dense", &dense);
    let sparse_counts = measure("sparse", &sparse);

    // The acceptance gate runs on the dense (training-like) stimulus.
    let min_speedup = dense_counts
        .iter()
        .map(|&(_, _, s, _)| s)
        .fold(f64::INFINITY, f64::min);
    println!(
        "cone-pruned differential settle vs compiled full sweep (dense): >= {min_speedup:.1}x \
         at every defect count (acceptance gate: 3x)"
    );
    let min_speedup_lut = dense_counts
        .iter()
        .map(|&(_, _, _, s)| s)
        .fold(f64::INFINITY, f64::min);
    println!(
        "LUT instruction stream vs compiled full sweep (dense): >= {min_speedup_lut:.1}x \
         at every defect count"
    );

    let rates = |per_count: &[(usize, Vec<Measurement>, f64, f64)], name: &str| -> Vec<f64> {
        per_count
            .iter()
            .map(|(_, ms, _, _)| {
                ms.iter()
                    .find(|m| m.name == name)
                    .map_or(0.0, |m| m.evals_per_s)
            })
            .collect()
    };
    let out_path = args.get("bench-out", "BENCH_simspeed.json".to_string());
    let mut record = JsonMap::new()
        .str("bin", "exp_simspeed")
        .str(
            "activation",
            args.get_str_list("activation", &["permanent"])[0].as_str(),
        )
        .int("rows", rows as u64)
        .int_list("defect_counts", &defect_counts);
    for (suffix, per_count) in [("", &dense_counts), ("_sparse", &sparse_counts)] {
        for name in ["switch", "compiled", "event", "cone", "batch64", "lut"] {
            let rs = rates(per_count, name);
            if rs.iter().any(|&r| r > 0.0) {
                record = record.num_list(&format!("evals_per_s_{name}{suffix}"), &rs);
            }
        }
    }
    record = record
        .num_list(
            "speedup_cone_vs_compiled",
            &dense_counts
                .iter()
                .map(|&(_, _, s, _)| s)
                .collect::<Vec<_>>(),
        )
        .num("min_speedup_cone_vs_compiled", min_speedup)
        .num_list(
            "speedup_lut_vs_compiled",
            &dense_counts
                .iter()
                .map(|&(_, _, _, s)| s)
                .collect::<Vec<_>>(),
        )
        .num("min_speedup_lut_vs_compiled", min_speedup_lut);
    match record.write(&out_path) {
        Ok(()) => println!("perf record written to {out_path}"),
        Err(e) => eprintln!("could not write {out_path}: {e}"),
    }
}
