//! Experiment: **mission mode** — degrade-and-recover operation under
//! mid-stream fault arrival, on both accelerator topologies.
//!
//! Where the other campaigns damage a commissioned array once and
//! measure the repaired steady state, this binary serves a sustained
//! inference stream while a seeded Poisson process plants defects *mid
//! -stream*, and compares two arms of the same seed at each arrival
//! rate:
//!
//! * **blind** — same traffic, same fault arrivals, no probes, no
//!   repair: the array just soaks up damage (the deployed-and-ignored
//!   control);
//! * **mission** — periodic incremental BIST probes drive the
//!   per-accelerator health machine (Healthy → Suspect → Recovering →
//!   {Healthy, Degraded, Quarantined}); detection triggers the full
//!   recovery ladder, failed episodes charge exponential backoff in
//!   skipped batches, and exhausted retry budgets quarantine the unit
//!   fail-silent while the stream keeps serving.
//!
//! On the spatial topology each arrival is **combined-surface**
//! (transistor-level operator defects plus permanent bit-cell defects
//! in the attached SEC-DED weight store, split `ceil/floor` like the
//! combined campaign cells); on the systolic grid each arrival plants
//! permanent PE faults. Both arms of a cell share the mission seed, so
//! they see bit-identical arrival schedules and fault draws; the binary
//! asserts the floor **mission terminal accuracy ≥ blind** at every
//! (topology, rate) cell and exits 1 on a violation.
//!
//! With `--checkpoint`, every finished arm lands in a
//! fingerprint-guarded journal (pseudo-tasks
//! `task@topo#rN:arm:{acc,avail,sum}`; the health-state summary row is
//! written last as the completion marker) and a killed sweep resumes
//! byte-identical. Machine-readable lines for scripts/CI start with
//! `data `; the perf record goes to `BENCH_mission.json` (`--bench-out`
//! overrides).
//!
//! ```sh
//! cargo run --release -p dta-bench --bin exp_mission
//! cargo run --release -p dta-bench --bin exp_mission -- \
//!     --rates 0.05 --windows 4 --batches 8 --checkpoint mission.jsonl
//! ```

use std::time::Instant;

use dta_bench::twin;
use dta_bench::{pct, require_task, rule, Args, JsonMap};
use dta_circuits::Activation;
use dta_core::{
    run_mission, Accel, Accelerator, BistConfig, CellOutcome, Checkpoint, HealthState, MemGeometry,
    MissionConfig, RecoveryPolicy, RungBudget, SurfaceMix, WeightMemory,
};
use dta_datasets::{Dataset, TaskSpec};
use dta_systolic::SystolicAccelerator;

const BIN: &str = "exp_mission";

/// The two topologies of the comparison, in run order.
const TOPOS: [&str; 2] = ["spatial", "systolic"];

/// The two arms of each cell, in run order.
const ARMS: [&str; 2] = ["blind", "mission"];

/// One arm's journaled trace and summary. Everything is `f64` so the
/// whole struct round-trips through the checkpoint journal's accuracy
/// slot; counters are exact small integers, so the round trip is
/// lossless. `-1.0` stands in for "no episode/detection happened"
/// (`None` in the mission outcome).
#[derive(Clone, Debug, PartialEq)]
struct ArmResult {
    /// Mean served accuracy per reporting window.
    window_accuracy: Vec<f64>,
    /// Served-batch fraction per reporting window.
    window_availability: Vec<f64>,
    /// Accuracy over the full evaluation split after the last batch.
    final_accuracy: f64,
    /// Served batches over total batches.
    availability: f64,
    /// Fault-arrival events that fired.
    arrivals: f64,
    /// Arrivals a later probe detected.
    detected: f64,
    /// Mean batches from arrival to the detecting probe (`-1` = none).
    detection_latency: f64,
    /// Mean retraining epochs per recovery episode (`-1` = none ran).
    recovery_epochs: f64,
    /// Recovery-ladder episodes run.
    episodes: f64,
    /// Units masked fail-silent by quarantine.
    quarantined: f64,
    /// Final health state, encoded by [`state_code`].
    state: f64,
}

/// Stable numeric encoding of a health state for the journal.
fn state_code(state: HealthState) -> f64 {
    match state {
        HealthState::Healthy => 0.0,
        HealthState::Suspect => 1.0,
        HealthState::Recovering => 2.0,
        HealthState::Degraded => 3.0,
        HealthState::Quarantined => 4.0,
    }
}

/// Human-readable name for a journaled state code.
fn state_name(code: f64) -> &'static str {
    match code as i64 {
        0 => "healthy",
        1 => "suspect",
        2 => "recovering",
        3 => "degraded",
        4 => "quarantined",
        _ => "?",
    }
}

/// The summary slots of one arm's `:sum` pseudo-task, in journal order.
/// The state code (index 8) is written last and doubles as the arm's
/// completion marker on replay.
const SUM_SLOTS: usize = 9;

/// One finished (topology index, rate index) cell: blind arm, then
/// mission arm.
type CellRow = (usize, usize, ArmResult, ArmResult);

/// Everything shared by every cell of the sweep.
struct Sweep<'a> {
    spec: &'a TaskSpec,
    ds: &'a Dataset,
    epochs: usize,
    windows: usize,
    batches: u64,
    rows: usize,
    probe_interval: u64,
    probe_budget_ms: u64,
    event_defects: usize,
    max_attempts: usize,
    recovery_epochs: usize,
    budget_ms: u64,
    target_drop: f64,
    seed: u64,
    geom: MemGeometry,
}

impl Sweep<'_> {
    /// The shared mission seed of one (topology, rate) cell. Both arms
    /// use it, so they see identical arrival schedules and fault draws.
    fn cell_seed(&self, topo_idx: usize, rate_idx: usize) -> u64 {
        self.seed ^ ((topo_idx as u64) << 40) ^ ((rate_idx as u64) << 24)
    }

    /// The mission configuration of one arm.
    fn config(&self, rate: f64, detection: bool, cell_seed: u64, clean: f64) -> MissionConfig {
        let budget = RungBudget {
            max_epochs: self.recovery_epochs,
            wall_clock_ms: self.budget_ms,
        };
        MissionConfig {
            windows: self.windows,
            batches_per_window: self.batches,
            rows_per_batch: self.rows,
            arrival_rate: rate,
            probe_interval: self.probe_interval,
            probe_budget_ms: self.probe_budget_ms,
            detection,
            max_recovery_attempts: self.max_attempts,
            seed: cell_seed,
            bist: BistConfig::default(),
            recovery: RecoveryPolicy {
                retrain: budget,
                remap: budget,
                target_accuracy: (clean - self.target_drop).max(0.0),
                learning_rate: self.spec.learning_rate,
                momentum: 0.1,
                seed: cell_seed,
                ..RecoveryPolicy::default()
            },
        }
    }

    /// Runs one arm of one cell and returns its trace.
    fn run_arm(&self, topo: &str, rate_idx: usize, rate: f64, arm: &str) -> ArmResult {
        let (spec, ds) = (self.spec, self.ds);
        let topo_idx = TOPOS.iter().position(|t| *t == topo).unwrap();
        let cell_seed = self.cell_seed(topo_idx, rate_idx);
        let detection = arm == "mission";
        let label = format!("{topo} rate={rate} {arm}");
        let fold = &ds.k_folds(5, self.seed)[0];

        let outcome = match topo {
            "spatial" => {
                let mut accel = twin::commission(
                    BIN,
                    Accelerator::new(),
                    spec,
                    ds,
                    &fold.train,
                    self.epochs,
                    cell_seed,
                );
                accel
                    .attach_weight_memory_with(WeightMemory::new(self.geom))
                    .unwrap_or_else(|e| twin::die(BIN, &label, "memory attach", &e));
                let clean = accel
                    .evaluate(ds, &fold.test)
                    .unwrap_or_else(|e| twin::die(BIN, &label, "clean evaluation", &e));
                let cfg = self.config(rate, detection, cell_seed, clean);
                // Combined-surface arrivals: operator cells and weight
                // bit cells damaged by the same event.
                let mix = SurfaceMix::combined(self.event_defects);
                run_mission(
                    &mut accel,
                    ds,
                    &fold.train,
                    &fold.test,
                    &cfg,
                    |a, _, rng| mix.inject_spatial(a, rng),
                )
            }
            _ => {
                let mut accel = twin::commission(
                    BIN,
                    SystolicAccelerator::new(),
                    spec,
                    ds,
                    &fold.train,
                    self.epochs,
                    cell_seed,
                );
                let clean = accel
                    .evaluate(ds, &fold.test)
                    .unwrap_or_else(|e| twin::die(BIN, &label, "clean evaluation", &e));
                let cfg = self.config(rate, detection, cell_seed, clean);
                let n = self.event_defects;
                run_mission(
                    &mut accel,
                    ds,
                    &fold.train,
                    &fold.test,
                    &cfg,
                    |a, _, rng| a.inject_defects(n, Activation::Permanent, rng),
                )
            }
        };
        let outcome = outcome.unwrap_or_else(|e| twin::die(BIN, &label, "mission", &e));

        ArmResult {
            window_accuracy: outcome.window_accuracy,
            window_availability: outcome.window_availability,
            final_accuracy: outcome.final_accuracy,
            availability: outcome.availability,
            arrivals: outcome.arrivals as f64,
            detected: outcome.detected as f64,
            detection_latency: outcome.mean_detection_latency.unwrap_or(-1.0),
            recovery_epochs: outcome.mean_recovery_epochs.unwrap_or(-1.0),
            episodes: outcome.recovery_episodes as f64,
            quarantined: outcome.quarantined_units as f64,
            state: state_code(outcome.final_state),
        }
    }
}

/// Replays a journaled arm if it finished (its state-code summary row,
/// written last, is present) — otherwise `None` and the arm re-runs.
fn replay_arm(ck: &Checkpoint, key: &str, windows: usize) -> Option<ArmResult> {
    let get = |task: &str, idx: usize| match ck.lookup(task, idx, 0) {
        Some(CellOutcome::Completed { accuracy, .. }) => Some(accuracy),
        _ => None,
    };
    let sum = format!("{key}:sum");
    get(&sum, SUM_SLOTS - 1)?;
    let mut window_accuracy = Vec::with_capacity(windows);
    let mut window_availability = Vec::with_capacity(windows);
    for w in 0..windows {
        window_accuracy.push(get(&format!("{key}:acc"), w)?);
        window_availability.push(get(&format!("{key}:avail"), w)?);
    }
    Some(ArmResult {
        window_accuracy,
        window_availability,
        final_accuracy: get(&sum, 0)?,
        availability: get(&sum, 1)?,
        arrivals: get(&sum, 2)?,
        detected: get(&sum, 3)?,
        detection_latency: get(&sum, 4)?,
        recovery_epochs: get(&sum, 5)?,
        episodes: get(&sum, 6)?,
        quarantined: get(&sum, 7)?,
        state: get(&sum, 8)?,
    })
}

/// Journals a finished arm: per-window rows first, summary rows in slot
/// order, the state code last (the completion marker `replay_arm`
/// checks). A write failure exits with status 1.
fn record_arm(ck: &Checkpoint, key: &str, r: &ArmResult) {
    let put = |task: String, idx: usize, accuracy: f64| {
        let outcome = CellOutcome::Completed {
            accuracy,
            retried: false,
        };
        if let Err(e) = ck.record(&task, idx, 0, &outcome) {
            eprintln!("{BIN}: checkpoint write failed: {e}");
            std::process::exit(1);
        }
    };
    for (w, (&acc, &avail)) in r
        .window_accuracy
        .iter()
        .zip(&r.window_availability)
        .enumerate()
    {
        put(format!("{key}:acc"), w, acc);
        put(format!("{key}:avail"), w, avail);
    }
    let sum = [
        r.final_accuracy,
        r.availability,
        r.arrivals,
        r.detected,
        r.detection_latency,
        r.recovery_epochs,
        r.episodes,
        r.quarantined,
        r.state,
    ];
    for (idx, &value) in sum.iter().enumerate() {
        put(format!("{key}:sum"), idx, value);
    }
}

fn main() {
    let args = Args::parse();
    let task = args.get_str_list("task", &["iris"])[0].clone();
    let rates = args.get_f64_list("rates", &[0.02, 0.05, 0.1]);
    let windows = args.get("windows", 6usize);
    let batches = args.get("batches", 12u64);
    let rows = args.get("rows", 8usize);
    let probe_interval = args.get("probe-interval", 4u64);
    let probe_budget_ms = args.get("probe-budget-ms", 10_000u64);
    let event_defects = args.get("event-defects", 4usize);
    let max_attempts = args.get("max-attempts", 2usize);
    let epochs = args.get("epochs", 30usize);
    let recovery_epochs = args.get("recovery-epochs", 12usize);
    let budget_ms = args.get("budget-ms", 60_000u64);
    let target_drop = args.get("target-drop", 0.05f64);
    let seed = args.get("seed", 0x00A1_1077u64);
    let bench_out = args
        .get_opt_str("bench-out")
        .unwrap_or("BENCH_mission.json");
    let checkpoint_path = args.get_opt_str("checkpoint");

    let spec = require_task(&task);
    let ds = spec.dataset();
    let phys = dta_ann::Topology::accelerator();
    let mut geom = MemGeometry::for_network(phys.inputs, phys.hidden, phys.outputs, true);
    geom.spare_rows = 2;
    geom.spare_cols = 8;

    let sweep = Sweep {
        spec: &spec,
        ds: &ds,
        epochs,
        windows,
        batches,
        rows,
        probe_interval,
        probe_budget_ms,
        event_defects,
        max_attempts,
        recovery_epochs,
        budget_ms,
        target_drop,
        seed,
        geom,
    };

    // Everything that determines arm results goes into the journal
    // fingerprint — a resumed run with a different stream shape, fault
    // mix, or ladder budget must refuse the journal, not mix traces.
    let fingerprint = format!(
        "exp_mission v1 task={task} rates={rates:?} windows={windows} batches={batches} \
         rows={rows} probe_interval={probe_interval} probe_budget_ms={probe_budget_ms} \
         event_defects={event_defects} max_attempts={max_attempts} epochs={epochs} \
         recovery_epochs={recovery_epochs} budget_ms={budget_ms} target_drop={target_drop:?} \
         seed={seed:#x} mem=ecc:2r8c"
    );
    let checkpoint = checkpoint_path.map(|p| twin::open_checkpoint(BIN, p, &fingerprint));

    println!(
        "Mission mode on {task}: {windows}x{batches} batches of {rows} rows, probe every \
         {probe_interval}, {event_defects} defects/event, {max_attempts} retry(s) before \
         quarantine, {recovery_epochs} epochs / {budget_ms} ms per rung\n"
    );
    println!(
        "{:<10}{:>7}{:>8}{:>9}{:>7}{:>9}{:>8}{:>6}  {:<12}",
        "topo", "rate", "blind", "mission", "gain", "avail", "detlat", "quar", "state"
    );
    rule(78);

    let start = Instant::now();
    // results[(topo, rate_idx)] = [blind, mission]
    let mut results: Vec<CellRow> = Vec::new();
    let mut floor_violations = 0usize;
    for (topo_idx, topo) in TOPOS.iter().enumerate() {
        for (rate_idx, &rate) in rates.iter().enumerate() {
            let mut arms: Vec<ArmResult> = Vec::with_capacity(2);
            for arm in ARMS {
                let key = format!("{task}@{topo}#r{rate_idx}:{arm}");
                let result = checkpoint
                    .as_ref()
                    .and_then(|ck| replay_arm(ck, &key, windows))
                    .unwrap_or_else(|| {
                        let r = sweep.run_arm(topo, rate_idx, rate, arm);
                        if let Some(ck) = &checkpoint {
                            record_arm(ck, &key, &r);
                        }
                        r
                    });
                arms.push(result);
            }
            let mission = arms.pop().unwrap();
            let blind = arms.pop().unwrap();
            if mission.final_accuracy < blind.final_accuracy {
                eprintln!(
                    "{BIN}: FLOOR VIOLATION at {topo} rate={rate}: mission {} < blind {}",
                    pct(mission.final_accuracy),
                    pct(blind.final_accuracy)
                );
                floor_violations += 1;
            }
            println!(
                "{:<10}{:>7}{:>8}{:>9}{:>7}{:>9}{:>8}{:>6}  {:<12}",
                topo,
                format!("{rate}"),
                pct(blind.final_accuracy),
                pct(mission.final_accuracy),
                pct(mission.final_accuracy - blind.final_accuracy),
                pct(mission.availability),
                if mission.detection_latency < 0.0 {
                    "-".to_string()
                } else {
                    format!("{:.1}", mission.detection_latency)
                },
                mission.quarantined as usize,
                state_name(mission.state),
            );
            results.push((topo_idx, rate_idx, blind, mission));
        }
    }
    let wall_s = start.elapsed().as_secs_f64();
    rule(78);

    // Stable machine-readable lines (floats in shortest round-trip
    // form, so a resumed run diffs clean against an uninterrupted one).
    println!();
    for (topo_idx, rate_idx, blind, mission) in &results {
        for (arm, r) in ARMS.iter().zip([blind, mission]) {
            println!(
                "data {task} {} {:?} {arm} {:?} {:?} {:?} {:?} {:?} {:?} {:?} {:?} {:?} {:?} {:?}",
                TOPOS[*topo_idx],
                rates[*rate_idx],
                r.window_accuracy,
                r.window_availability,
                r.final_accuracy,
                r.availability,
                r.arrivals,
                r.detected,
                r.detection_latency,
                r.recovery_epochs,
                r.episodes,
                r.quarantined,
                r.state,
            );
        }
    }

    println!(
        "\n{} cell(s) in {wall_s:.2} s; mission terminal accuracy >= blind at every \
         (topology, rate) — asserted in-binary.",
        results.len()
    );

    let mut record = JsonMap::new()
        .str("bin", BIN)
        .str("task", &task)
        .str_list(
            "topos",
            &TOPOS.iter().map(|t| t.to_string()).collect::<Vec<_>>(),
        )
        .num_list("rates", &rates)
        .int("windows", windows as u64)
        .int("batches_per_window", batches)
        .int("rows_per_batch", rows as u64)
        .int("probe_interval", probe_interval)
        .int("probe_budget_ms", probe_budget_ms)
        .int("event_defects", event_defects as u64)
        .int("max_recovery_attempts", max_attempts as u64)
        .int("epochs", epochs as u64)
        .int("recovery_epochs", recovery_epochs as u64)
        .int("budget_ms", budget_ms)
        .num("target_drop", target_drop)
        .int("seed", seed);
    for (topo_idx, topo) in TOPOS.iter().enumerate() {
        let cells: Vec<&CellRow> = results
            .iter()
            .filter(|(t, _, _, _)| *t == topo_idx)
            .collect();
        let col =
            |f: &dyn Fn(&CellRow) -> f64| -> Vec<f64> { cells.iter().map(|c| f(c)).collect() };
        record = record
            .num_list(
                &format!("{topo}_blind_final"),
                &col(&|c| c.2.final_accuracy),
            )
            .num_list(
                &format!("{topo}_mission_final"),
                &col(&|c| c.3.final_accuracy),
            )
            .num_list(
                &format!("{topo}_blind_availability"),
                &col(&|c| c.2.availability),
            )
            .num_list(
                &format!("{topo}_mission_availability"),
                &col(&|c| c.3.availability),
            )
            .num_list(&format!("{topo}_mission_arrivals"), &col(&|c| c.3.arrivals))
            .num_list(&format!("{topo}_mission_detected"), &col(&|c| c.3.detected))
            .num_list(
                &format!("{topo}_mission_detection_latency"),
                &col(&|c| c.3.detection_latency),
            )
            .num_list(
                &format!("{topo}_mission_recovery_epochs"),
                &col(&|c| c.3.recovery_epochs),
            )
            .num_list(&format!("{topo}_mission_episodes"), &col(&|c| c.3.episodes))
            .num_list(
                &format!("{topo}_mission_quarantined"),
                &col(&|c| c.3.quarantined),
            )
            .num_list(&format!("{topo}_mission_state"), &col(&|c| c.3.state));
    }
    record = record.num("wall_s", wall_s);
    if let Err(e) = record.write(bench_out) {
        eprintln!("{BIN}: writing {bench_out}: {e}");
        std::process::exit(1);
    }
    println!("perf record written to {bench_out}");

    if floor_violations > 0 {
        eprintln!("{BIN}: {floor_violations} floor violation(s) — mission arm below blind arm");
        std::process::exit(1);
    }
}
