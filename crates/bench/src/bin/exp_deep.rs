//! Extension experiment (paper §VIII future work): deep networks on the
//! accelerator.
//!
//! Compares 2-, 3- and 4-layer networks on the hardest suite task
//! (optdigits-like, 64 inputs / 10 classes) and reports the partial
//! time-multiplexing cost of mapping each depth onto the 90-10-10 array.
//!
//! ```sh
//! cargo run --release -p dta-bench --bin exp_deep -- --epochs 40
//! ```

use dta_ann::deep::{DeepMlp, DeepTrainer};
use dta_ann::Topology;
use dta_bench::{pct, require_task, rule, Args};
use dta_core::large::LargeNetworkMapper;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let args = Args::parse();
    let task = args.get_str_list("task", &["optdigits"])[0].clone();
    let epochs = args.get("epochs", 60usize);
    let seed = args.get("seed", 0xDEE9u64);

    let spec = require_task(&task);
    let ds = spec.dataset();
    let split = ds.k_folds(5, seed);
    let fold = &split[0];

    let architectures: Vec<Vec<usize>> = vec![
        vec![ds.n_features(), 14, ds.n_classes()],
        vec![ds.n_features(), 20, 12, ds.n_classes()],
        vec![ds.n_features(), 24, 16, 10, ds.n_classes()],
    ];

    let mapper = LargeNetworkMapper::new(Topology::accelerator());
    println!(
        "Deep networks on `{}` ({} train / {} test rows), {} epochs\n",
        spec.name,
        fold.train.len(),
        fold.test.len(),
        epochs
    );
    println!(
        "{:<22}{:>10}{:>12}{:>10}{:>14}",
        "architecture", "weights", "test acc", "passes", "latency"
    );
    rule(68);
    for dims in &architectures {
        let mut net = DeepMlp::new(dims, seed);
        let trainer = DeepTrainer::new(0.3, 0.2, epochs);
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ dims.len() as u64);
        trainer.train(&mut net, &ds, &fold.train, &mut rng);
        let acc = trainer.evaluate(&net, &ds, &fold.test);
        let label = dims
            .iter()
            .map(usize::to_string)
            .collect::<Vec<_>>()
            .join("-");
        println!(
            "{:<22}{:>10}{:>12}{:>10}{:>11.1} ns",
            label,
            net.n_weights(),
            pct(acc),
            mapper.passes_for_layers(dims),
            mapper.latency_ns_for_layers(dims)
        );
    }
    println!(
        "\ndeeper networks cost proportionally more passes under partial \
         time-multiplexing — the motivation for the paper's proposed 3D \
         stacking / memristor scaling paths. (Plain sigmoid back-propagation \
         needs more epochs as depth grows — the vanishing-gradient effect \
         that made 2012-era deep nets rely on pretraining.)"
    );
}
