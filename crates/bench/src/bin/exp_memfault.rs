//! Experiment: accuracy vs. **weight-memory defect density** — the
//! Figure-10 sweep re-run against the bit-cell array fault surface of
//! `dta-mem` instead of transistor-level operator defects.
//!
//! For each density, a commissioned accelerator (clean-trained on the
//! task) gets a SEC-DED-protected weight store attached and seeded with
//! `round(density × data_cells)` array defects (stuck cells, row and
//! column failures, sense-amp/write-driver faults, bitline bridges).
//! Twin copies then race through the recovery ladder:
//!
//! * **blind** — retraining only, no diagnosis, no memory repair (the
//!   paper's Figure 10 mechanism applied to a faulty weight store);
//! * **recovered** — the full pipeline: March C- BIST localizes the
//!   damage, then ECC scrub, spare row/column steering,
//!   sensitivity-aware placement, remap and graceful degradation fall
//!   through in order.
//!
//! Both arms share seeds and budgets, so the pipeline arm can never end
//! below the blind arm; the binary asserts this floor at every cell.
//! With `--checkpoint`, finished cells land in a fingerprint-guarded
//! journal and a killed sweep resumes byte-identical. The twin-arm
//! protocol and the journal arm layout live in [`dta_bench::twin`],
//! shared with `exp_recovery` and `exp_systolic`.
//!
//! ```sh
//! cargo run --release -p dta-bench --bin exp_memfault
//! cargo run --release -p dta-bench --bin exp_memfault -- \
//!     --densities 0,0.001,0.01 --reps 1 --checkpoint memfault.jsonl
//! ```

use std::time::Instant;

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use dta_ann::Topology;
use dta_bench::twin::{self, TwinCell};
use dta_bench::{pct, require_task, rule, Args, JsonMap};
use dta_core::{Accelerator, MemActivation, MemGeometry, RecoveryPolicy, RungBudget, WeightMemory};
use dta_datasets::{Dataset, TaskSpec};

const BIN: &str = "exp_memfault";

/// Everything shared by every cell of the sweep.
struct Sweep<'a> {
    spec: &'a TaskSpec,
    ds: &'a Dataset,
    epochs: usize,
    policy_base: RecoveryPolicy,
    target_drop: f64,
    seed: u64,
    geom: MemGeometry,
}

impl Sweep<'_> {
    /// Runs one cell: `idx` is the density's position in the sweep (the
    /// journal key), `n_defects` the realized defect count.
    fn run_cell(&self, idx: usize, n_defects: usize, rep: usize) -> TwinCell {
        let (spec, ds, epochs) = (self.spec, self.ds, self.epochs);
        let cell_seed = self.seed ^ (idx as u64) << 24 ^ (rep as u64) << 8;
        let folds = ds.k_folds(5, self.seed ^ rep as u64);
        let fold = &folds[0];
        let label = format!("density idx={idx} rep={rep}");

        let commission = || {
            twin::commission(
                BIN,
                Accelerator::new(),
                spec,
                ds,
                &fold.train,
                epochs,
                cell_seed,
            )
        };
        // The damaged arms put the task's weights behind an identically
        // broken weight store. The store spans the full physical array
        // so a remapped lane always has a backing row.
        twin::run_twin_race(
            BIN,
            &label,
            || {
                let mut accel = commission();
                accel
                    .attach_weight_memory_with(WeightMemory::new(self.geom))
                    .unwrap_or_else(|e| twin::die(BIN, &label, "memory attach", &e));
                let mut rng = ChaCha8Rng::seed_from_u64(cell_seed ^ 0x3E3);
                accel
                    .inject_memory_defects(n_defects, MemActivation::Permanent, &mut rng)
                    .unwrap_or_else(|e| twin::die(BIN, &label, "defect injection", &e));
                accel
            },
            commission,
            ds,
            fold,
            &self.policy_base,
            self.target_drop,
            cell_seed,
        )
        .cell
    }
}

fn main() {
    let args = Args::parse();
    let task = args.get_str_list("task", &["iris"])[0].clone();
    let densities = args.get_f64_list("densities", &[0.0, 5e-5, 1e-4, 3e-4, 1e-3, 3e-3, 1e-2]);
    let reps = args.get("reps", 2usize);
    let epochs = args.get("epochs", 30usize);
    let recovery_epochs = args.get("recovery-epochs", 24usize);
    let budget_ms = args.get("budget-ms", 60_000u64);
    let target_drop = args.get("target-drop", 0.02f64);
    let seed = args.get("seed", 0x3E30u64);
    let ecc = args.get_bool("ecc", true);
    let spare_rows = args.get("spare-rows", 2usize);
    let spare_cols = args.get("spare-cols", 8usize);
    let bench_out = args
        .get_opt_str("bench-out")
        .unwrap_or("BENCH_memfault.json");
    let checkpoint_path = args.get_opt_str("checkpoint");

    let spec = require_task(&task);
    let ds = spec.dataset();
    let phys = Topology::accelerator();
    let mut geom = MemGeometry::for_network(phys.inputs, phys.hidden, phys.outputs, ecc);
    geom.spare_rows = spare_rows;
    geom.spare_cols = spare_cols;
    let data_cells = geom.data_cells();
    let counts: Vec<usize> = densities
        .iter()
        .map(|d| (d * data_cells as f64).round() as usize)
        .collect();

    let budget = RungBudget {
        max_epochs: recovery_epochs,
        wall_clock_ms: budget_ms,
    };
    let sweep = Sweep {
        spec: &spec,
        ds: &ds,
        epochs,
        policy_base: RecoveryPolicy {
            retrain: budget,
            remap: budget,
            learning_rate: spec.learning_rate,
            momentum: 0.1,
            ..RecoveryPolicy::default()
        },
        target_drop,
        seed,
        geom,
    };

    // Everything that determines cell results goes into the journal
    // fingerprint — a resumed run with a different memory profile (or
    // grid) must refuse the journal, not silently mix curves.
    let fingerprint = format!(
        "exp_memfault v1 task={task} densities={densities:?} reps={reps} epochs={epochs} \
         recovery_epochs={recovery_epochs} budget_ms={budget_ms} target_drop={target_drop:?} \
         seed={seed:#x} mem=rows:{spare_rows},cols:{spare_cols},ecc:{ecc}"
    );
    let checkpoint = checkpoint_path.map(|p| twin::open_checkpoint(BIN, p, &fingerprint));

    println!(
        "Weight-memory defect sweep on {task}: {reps} rep(s) per density over {data_cells} \
         bit cells (ecc={ecc}, spares {spare_rows}r/{spare_cols}c), {recovery_epochs} epochs \
         / {budget_ms} ms per rung, target drop {target_drop}\n"
    );
    println!(
        "{:<10}{:>8}{:>8}{:>8}{:>8}{:>10}{:>8}",
        "density", "defects", "clean", "faulty", "blind", "recovered", "gain"
    );
    rule(60);

    let start = Instant::now();
    let mut agg_clean = Vec::new();
    let mut agg_faulty = Vec::new();
    let mut agg_blind = Vec::new();
    let mut agg_recovered = Vec::new();
    for (idx, (&density, &n_defects)) in densities.iter().zip(&counts).enumerate() {
        let cells: Vec<TwinCell> = (0..reps)
            .map(|rep| {
                if let Some(cell) = checkpoint
                    .as_ref()
                    .and_then(|ck| twin::replay_twin(ck, &task, idx, rep))
                {
                    return cell;
                }
                let cell = sweep.run_cell(idx, n_defects, rep);
                if let Some(ck) = &checkpoint {
                    twin::record_twin(BIN, ck, &task, idx, rep, &cell);
                }
                cell
            })
            .collect();
        twin::assert_twin_floor(&cells, &format!("density={density}"));
        let clean = twin::mean(&cells.iter().map(|c| c.clean).collect::<Vec<_>>());
        let faulty = twin::mean(&cells.iter().map(|c| c.faulty).collect::<Vec<_>>());
        let blind = twin::mean(&cells.iter().map(|c| c.blind).collect::<Vec<_>>());
        let recovered = twin::mean(&cells.iter().map(|c| c.recovered).collect::<Vec<_>>());

        println!(
            "{:<10}{:>8}{:>8}{:>8}{:>8}{:>10}{:>8}",
            format!("{density}"),
            n_defects,
            pct(clean),
            pct(faulty),
            pct(blind),
            pct(recovered),
            pct(recovered - blind),
        );
        println!(
            "data {task} {idx} {density:?} {n_defects} {clean:?} {faulty:?} {blind:?} \
             {recovered:?}"
        );
        agg_clean.push(clean);
        agg_faulty.push(faulty);
        agg_blind.push(blind);
        agg_recovered.push(recovered);
    }
    let wall_s = start.elapsed().as_secs_f64();
    rule(60);
    println!(
        "\nrecovered >= blind at every density (shared rung-1 trajectory, asserted \
         in-binary); the gain column is what the memory-repair rungs — ECC scrub, \
         spare steering, placement — plus remap add on top of blind retraining."
    );

    let json = JsonMap::new()
        .str("bin", "exp_memfault")
        .str("task", &task)
        .num_list("densities", &densities)
        .int_list("counts", &counts)
        .int("data_cells", data_cells as u64)
        .int("reps", reps as u64)
        .int("epochs", epochs as u64)
        .int("recovery_epochs", recovery_epochs as u64)
        .int("budget_ms", budget_ms)
        .num("target_drop", target_drop)
        .int("seed", seed)
        .int("ecc", ecc as u64)
        .int("spare_rows", spare_rows as u64)
        .int("spare_cols", spare_cols as u64)
        .num_list("clean", &agg_clean)
        .num_list("faulty", &agg_faulty)
        .num_list("blind", &agg_blind)
        .num_list("recovered", &agg_recovered)
        .num("wall_s", wall_s);
    if let Err(e) = json.write(bench_out) {
        eprintln!("exp_memfault: writing {bench_out}: {e}");
        std::process::exit(1);
    }
    println!("wrote {bench_out} ({wall_s:.1}s)");
}
