//! Experiment: **spatial vs. systolic** — the defect-count recovery
//! sweep run on both accelerator topologies.
//!
//! For each defect count, twin copies of a commissioned accelerator are
//! damaged identically and raced through the recovery ladder (blind
//! retraining vs. the full diagnosis-guided pipeline — the shared
//! protocol of [`dta_bench::twin`]), once per topology:
//!
//! * **spatial** — the paper's spatially expanded array
//!   (`dta-core::Accelerator`), damaged with transistor-level operator
//!   defects, repaired by spare-lane remap/masking;
//! * **systolic** — the weight-stationary MAC grid
//!   (`dta-systolic::SystolicAccelerator`), damaged with per-PE defects
//!   (stuck multiplier/adder/accumulator bits, dead PEs), repaired by
//!   PE bypass and fault-aware row remap onto spare PE rows.
//!
//! Both topologies run the *same* campaign code — commissioning,
//! BIST-driven diagnosis and the recovery ladder all go through the
//! `Accel` trait — so the table is a like-for-like comparison of how
//! each fault surface degrades and how much topology-native repair
//! recovers. The pipeline arm can never end below the blind arm; the
//! binary asserts this floor at every cell. With `--checkpoint`,
//! finished cells land in a fingerprint-guarded journal (pseudo-task
//! `task@topology#arm`) and a killed sweep resumes byte-identical.
//!
//! ```sh
//! cargo run --release -p dta-bench --bin exp_systolic
//! cargo run --release -p dta-bench --bin exp_systolic -- \
//!     --counts 0,4,8 --reps 1 --checkpoint systolic.jsonl
//! ```

use std::time::Instant;

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use dta_bench::twin::{self, TwinCell};
use dta_bench::{pct, require_task, rule, Args, JsonMap};
use dta_circuits::{Activation, FaultModel};
use dta_core::{Accelerator, RecoveryPolicy, RungBudget};
use dta_datasets::{Dataset, TaskSpec};
use dta_systolic::SystolicAccelerator;

const BIN: &str = "exp_systolic";

/// The two topologies of the comparison, in run order.
const TOPOS: [&str; 2] = ["spatial", "systolic"];

/// Everything shared by every cell of the sweep.
struct Sweep<'a> {
    spec: &'a TaskSpec,
    ds: &'a Dataset,
    epochs: usize,
    policy_base: RecoveryPolicy,
    target_drop: f64,
    seed: u64,
}

impl Sweep<'_> {
    fn run_cell(&self, topo: &str, defects: usize, rep: usize) -> TwinCell {
        let (spec, ds, epochs) = (self.spec, self.ds, self.epochs);
        let cell_seed = self.seed ^ (defects as u64) << 24 ^ (rep as u64) << 8;
        let folds = ds.k_folds(5, self.seed ^ rep as u64);
        let fold = &folds[0];
        let label = format!("{topo} defects={defects} rep={rep}");

        if topo == "spatial" {
            let commission = || {
                twin::commission(
                    BIN,
                    Accelerator::new(),
                    spec,
                    ds,
                    &fold.train,
                    epochs,
                    cell_seed,
                )
            };
            twin::run_twin_race(
                BIN,
                &label,
                || {
                    let mut accel = commission();
                    let mut rng = ChaCha8Rng::seed_from_u64(cell_seed ^ 0xFA11);
                    accel
                        .inject_defects(defects, FaultModel::TransistorLevel, &mut rng)
                        .unwrap_or_else(|e| twin::die(BIN, &label, "defect injection", &e));
                    accel
                },
                commission,
                ds,
                fold,
                &self.policy_base,
                self.target_drop,
                cell_seed,
            )
            .cell
        } else {
            let commission = || {
                twin::commission(
                    BIN,
                    SystolicAccelerator::new(),
                    spec,
                    ds,
                    &fold.train,
                    epochs,
                    cell_seed,
                )
            };
            twin::run_twin_race(
                BIN,
                &label,
                || {
                    let mut accel = commission();
                    let mut rng = ChaCha8Rng::seed_from_u64(cell_seed ^ 0xFA11);
                    accel
                        .inject_defects(defects, Activation::Permanent, &mut rng)
                        .unwrap_or_else(|e| twin::die(BIN, &label, "defect injection", &e));
                    accel
                },
                commission,
                ds,
                fold,
                &self.policy_base,
                self.target_drop,
                cell_seed,
            )
            .cell
        }
    }
}

fn main() {
    let args = Args::parse();
    let task = args.get_str_list("task", &["iris"])[0].clone();
    let counts = args.get_usize_list("counts", &[0, 4, 8, 16, 24, 32, 48]);
    let reps = args.get("reps", 2usize);
    let epochs = args.get("epochs", 30usize);
    // Deliberately tighter than exp_recovery's 24: with a generous
    // retrain budget, blind retraining heals iris at every count and
    // the structural rungs never differentiate. A 4-epoch budget is the
    // regime the repair rungs are for.
    let recovery_epochs = args.get("recovery-epochs", 4usize);
    let budget_ms = args.get("budget-ms", 60_000u64);
    let target_drop = args.get("target-drop", 0.02f64);
    let seed = args.get("seed", 0x5A57u64);
    let bench_out = args
        .get_opt_str("bench-out")
        .unwrap_or("BENCH_systolic.json");
    let checkpoint_path = args.get_opt_str("checkpoint");

    let spec = require_task(&task);
    let ds = spec.dataset();
    let budget = RungBudget {
        max_epochs: recovery_epochs,
        wall_clock_ms: budget_ms,
    };
    let sweep = Sweep {
        spec: &spec,
        ds: &ds,
        epochs,
        policy_base: RecoveryPolicy {
            retrain: budget,
            remap: budget,
            learning_rate: spec.learning_rate,
            momentum: 0.1,
            ..RecoveryPolicy::default()
        },
        target_drop,
        seed,
    };

    // Everything that determines cell results goes into the journal
    // fingerprint — a resumed run with a different grid geometry (or
    // sweep shape) must refuse the journal, not silently mix curves.
    let geom = SystolicAccelerator::new().grid().geometry();
    let fingerprint = format!(
        "exp_systolic v1 task={task} counts={counts:?} reps={reps} epochs={epochs} \
         recovery_epochs={recovery_epochs} budget_ms={budget_ms} target_drop={target_drop:?} \
         seed={seed:#x} grid=rows:{},cols:{},spares:{}",
        geom.rows, geom.cols, geom.spare_rows
    );
    let checkpoint = checkpoint_path.map(|p| twin::open_checkpoint(BIN, p, &fingerprint));

    println!(
        "Spatial vs. systolic recovery sweep on {task}: {reps} rep(s) per defect count per \
         topology (grid {}x{}+{} spare rows), {recovery_epochs} epochs / {budget_ms} ms per \
         rung, target drop {target_drop}\n",
        geom.rows, geom.cols, geom.spare_rows
    );
    println!(
        "{:<10}{:<8}{:>8}{:>8}{:>8}{:>10}{:>8}",
        "topology", "defects", "clean", "faulty", "blind", "recovered", "gain"
    );
    rule(60);

    let start = Instant::now();
    let mut json = JsonMap::new()
        .str("bin", "exp_systolic")
        .str("task", &task)
        .int_list("counts", &counts)
        .int("reps", reps as u64)
        .int("epochs", epochs as u64)
        .int("recovery_epochs", recovery_epochs as u64)
        .int("budget_ms", budget_ms)
        .num("target_drop", target_drop)
        .int("seed", seed)
        .int("grid_rows", geom.rows as u64)
        .int("grid_cols", geom.cols as u64)
        .int("grid_spare_rows", geom.spare_rows as u64);
    let mut gain_means = Vec::new();
    for topo in TOPOS {
        let mut agg_clean = Vec::new();
        let mut agg_faulty = Vec::new();
        let mut agg_blind = Vec::new();
        let mut agg_recovered = Vec::new();
        for &defects in &counts {
            let key = format!("{task}@{topo}");
            let cells: Vec<TwinCell> = (0..reps)
                .map(|rep| {
                    if let Some(cell) = checkpoint
                        .as_ref()
                        .and_then(|ck| twin::replay_twin(ck, &key, defects, rep))
                    {
                        return cell;
                    }
                    let cell = sweep.run_cell(topo, defects, rep);
                    if let Some(ck) = &checkpoint {
                        twin::record_twin(BIN, ck, &key, defects, rep, &cell);
                    }
                    cell
                })
                .collect();
            twin::assert_twin_floor(&cells, &format!("{topo} defects={defects}"));
            let clean = twin::mean(&cells.iter().map(|c| c.clean).collect::<Vec<_>>());
            let faulty = twin::mean(&cells.iter().map(|c| c.faulty).collect::<Vec<_>>());
            let blind = twin::mean(&cells.iter().map(|c| c.blind).collect::<Vec<_>>());
            let recovered = twin::mean(&cells.iter().map(|c| c.recovered).collect::<Vec<_>>());

            println!(
                "{:<10}{:<8}{:>8}{:>8}{:>8}{:>10}{:>8}",
                topo,
                defects,
                pct(clean),
                pct(faulty),
                pct(blind),
                pct(recovered),
                pct(recovered - blind),
            );
            println!("data {task} {topo} {defects} {clean:?} {faulty:?} {blind:?} {recovered:?}");
            agg_clean.push(clean);
            agg_faulty.push(faulty);
            agg_blind.push(blind);
            agg_recovered.push(recovered);
        }
        let gains: Vec<f64> = agg_recovered
            .iter()
            .zip(&agg_blind)
            .map(|(r, b)| r - b)
            .collect();
        gain_means.push(twin::mean(&gains));
        json = json
            .num_list(&format!("{topo}_clean"), &agg_clean)
            .num_list(&format!("{topo}_faulty"), &agg_faulty)
            .num_list(&format!("{topo}_blind"), &agg_blind)
            .num_list(&format!("{topo}_recovered"), &agg_recovered);
        rule(60);
    }
    let wall_s = start.elapsed().as_secs_f64();
    println!(
        "\nrecovered >= blind at every cell of both topologies (shared rung-1 trajectory, \
         asserted in-binary). Mean repair gain over blind retraining: spatial {} \
         (remap/mask onto spare lanes), systolic {} (PE bypass + row remap onto spare \
         PE rows).",
        pct(gain_means[0]),
        pct(gain_means[1]),
    );

    json = json
        .num("spatial_gain_mean", gain_means[0])
        .num("systolic_gain_mean", gain_means[1])
        .num("wall_s", wall_s);
    if let Err(e) = json.write(bench_out) {
        eprintln!("exp_systolic: writing {bench_out}: {e}");
        std::process::exit(1);
    }
    println!("wrote {bench_out} ({wall_s:.1}s)");
}
