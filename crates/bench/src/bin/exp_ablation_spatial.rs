//! Ablation: spatially expanded vs. time-multiplexed organization under
//! random defects (the design choice at the heart of §II).
//!
//! For each defect count we measure, over several repetitions:
//! * the spatial design's accuracy after retraining (defects land in
//!   distributed per-synapse operators);
//! * the time-multiplexed design's accuracy (defects land in control
//!   logic / SRAM / shared neurons proportionally to transistor counts;
//!   control hits are catastrophic, shared-neuron defects are seen by
//!   every mapped logical neuron).
//!
//! ```sh
//! cargo run --release -p dta-bench --bin exp_ablation_spatial -- --reps 5
//! ```

use dta_ann::{Mlp, Topology};
use dta_bench::{require_task, rule, Args};
use dta_circuits::FaultModel;
use dta_core::campaign::{defect_tolerance_curve, CampaignConfig};
use dta_core::TimeMultiplexedAccelerator;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let args = Args::parse();
    let task = args.get_str_list("task", &["wine"])[0].clone();
    let reps = args.get("reps", 3usize);
    let epochs = args.get("epochs", 30usize);
    let counts = args.get_usize_list("counts", &[0, 2, 4, 8, 12, 20]);
    let seed = args.get("seed", 0x5BA71Au64);
    let phys = args.get("phys-neurons", 2usize);

    let spec = require_task(&task);
    let ds = spec.dataset();
    let idx: Vec<usize> = (0..ds.len()).collect();

    // Spatial design: the Figure 10 machinery.
    let cfg = CampaignConfig {
        defect_counts: counts.clone(),
        repetitions: reps,
        folds: 3,
        epochs: Some(epochs),
        model: FaultModel::TransistorLevel,
        seed,
        threads: args.get("threads", 1usize),
        ..CampaignConfig::default()
    };
    let spatial = defect_tolerance_curve(&spec, &cfg).unwrap_or_else(|e| {
        eprintln!("campaign failed: {e}");
        std::process::exit(1);
    });

    // Time-multiplexed design: train a clean network once, then inject
    // defects into the shared hardware and measure (no retraining can
    // fix a wrecked control path; per the paper the design is simply
    // more fragile).
    let trainer =
        dta_ann::Trainer::new(spec.learning_rate, 0.1, epochs, dta_ann::ForwardMode::Fixed);
    let topo = Topology::new(ds.n_features(), spec.hidden, ds.n_classes());
    let mut tm_rows = Vec::new();
    for &n in &counts {
        let mut accs = Vec::new();
        let mut broken = 0;
        for rep in 0..reps {
            let mut rng = ChaCha8Rng::seed_from_u64(seed ^ (n as u64) << 20 ^ rep as u64);
            let mut mlp = Mlp::new(topo, seed ^ rep as u64);
            trainer.train(&mut mlp, &ds, &idx, None, &mut rng);
            let mut tm = TimeMultiplexedAccelerator::new(phys);
            for _ in 0..n {
                tm.inject_random_defect(&mut rng);
            }
            if tm.is_broken() {
                broken += 1;
            }
            accs.push(tm.accuracy(&mlp, &ds, &idx));
        }
        tm_rows.push((n, accs.iter().sum::<f64>() / accs.len() as f64, broken));
    }

    println!(
        "Spatial vs. time-multiplexed ({phys} shared neurons) under defects — task `{task}`\n"
    );
    println!(
        "{:<10}{:>16}{:>16}{:>14}",
        "#defects", "spatial (acc)", "time-mux (acc)", "wrecked runs"
    );
    rule(56);
    for (sp, (n, tm_acc, broken)) in spatial.iter().zip(&tm_rows) {
        println!(
            "{:<10}{:>15.1}%{:>15.1}%{:>11}/{}",
            n,
            sp.mean_accuracy * 100.0,
            tm_acc * 100.0,
            broken,
            reps
        );
    }
    let tm = TimeMultiplexedAccelerator::new(phys);
    let (d, s, c) = tm.transistor_budget();
    let total = (d + s + c) as f64;
    println!(
        "\nTM vulnerable area: control {:.0}% + SRAM {:.0}% of transistors; \
         one control hit wrecks it.",
        c as f64 / total * 100.0,
        s as f64 / total * 100.0
    );
    println!(
        "Defect multiplication: one shared-neuron defect is seen by \
         ceil(({}+{})/{}) = {} logical neurons.",
        topo.hidden,
        topo.outputs,
        phys,
        tm.multiplexing_factor(topo)
    );
}
