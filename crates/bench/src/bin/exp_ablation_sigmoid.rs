//! Ablation: the 16-segment piecewise-linear sigmoid vs. the exact
//! sigmoid (paper §IV: "approximating the function with 16 segments has
//! no noticeable impact on the network accuracy").
//!
//! Also sweeps the segment count to show where the approximation starts
//! to matter.
//!
//! ```sh
//! cargo run --release -p dta-bench --bin exp_ablation_sigmoid
//! ```

use dta_ann::{cross_validate, ForwardMode, Trainer};
use dta_bench::{pct, require_task, rule, Args};
use dta_fixed::{sigmoid::sigmoid, Fx, PwlSigmoid, SigmoidLut};

fn main() {
    let args = Args::parse();
    let task_names = args.get_str_list("tasks", &["iris", "wine", "glass"]);
    let epochs = args.get("epochs", 30usize);
    let folds = args.get("folds", 3usize);
    let seed = args.get("seed", 0x516u64);

    // Approximation error of the LUT itself.
    let lut = SigmoidLut::new();
    println!(
        "16-segment PWL sigmoid: max |error| over all Q6.10 inputs = {:.4}",
        lut.max_abs_error()
    );
    let mut worst_mid = 0.0f64;
    for raw in (-8192i32..8192).step_by(16) {
        let x = Fx::from_raw(raw as i16);
        worst_mid = worst_mid.max((lut.eval(x).to_f64() - sigmoid(x.to_f64())).abs());
    }
    println!("                        max |error| on the central [-8,8) = {worst_mid:.4}\n");

    // Segment-count design space (chord approximation, no coefficient
    // quantization): where does the 16-segment choice sit?
    println!("{:<12}{:>16}", "#segments", "max |error|");
    rule(28);
    for n in [2usize, 4, 8, 16, 32, 64] {
        let marker = if n == 16 { "  <- hardware choice" } else { "" };
        println!(
            "{:<12}{:>16.5}{marker}",
            n,
            PwlSigmoid::new(n).max_abs_error()
        );
    }
    println!();

    // Accuracy: exact-sigmoid float path vs hardware fixed path (PWL).
    println!(
        "{:<12}{:>22}{:>22}{:>10}",
        "task", "float + exact sigmoid", "Q6.10 + 16-seg PWL", "delta"
    );
    rule(66);
    for name in &task_names {
        let spec = require_task(name);
        let ds = spec.dataset();
        let float = cross_validate(
            &Trainer::new(spec.learning_rate, 0.1, epochs, ForwardMode::Float),
            &ds,
            spec.hidden,
            folds,
            seed,
            None,
        );
        let fixed = cross_validate(
            &Trainer::new(spec.learning_rate, 0.1, epochs, ForwardMode::Fixed),
            &ds,
            spec.hidden,
            folds,
            seed,
            None,
        );
        println!(
            "{:<12}{:>22}{:>22}{:>+9.1}pt",
            spec.name,
            pct(float.mean()),
            pct(fixed.mean()),
            (fixed.mean() - float.mean()) * 100.0
        );
    }
    println!(
        "\npaper claim: the hardware path (Q6.10 + 16-segment sigmoid) matches \
         the floating-point software model — deltas should be within noise."
    );
}
