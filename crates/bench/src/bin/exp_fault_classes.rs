//! Analysis: the §III-B taxonomy of transistor-defect effects per cell
//! type — quantifying the paper's claim that "the actual behavior of a
//! faulty ANN circuit ... cannot be modeled using a stuck logic gate
//! input: the logic gate function will be changed, or it will be
//! transformed into a state element, or it can depend on free floating
//! devices".
//!
//! Every single-defect site of every standard cell is analyzed through
//! the reconstructed (Z_P, Z_N) expressions.
//!
//! ```sh
//! cargo run --release -p dta-bench --bin exp_fault_classes
//! ```

use dta_bench::{pct, rule};
use dta_logic::GateKind;
use dta_transistor::{analyze_cell, CmosCell};

fn main() {
    println!("Single-defect effect classes per standard cell (all sites)\n");
    println!(
        "{:<8}{:>7}{:>12}{:>14}{:>12}{:>10}{:>12}",
        "cell", "sites", "equivalent", "fn changed", "stateful", "fights", "delayed"
    );
    rule(75);

    let mut totals = [0usize; 6];
    for kind in GateKind::ALL {
        let base = CmosCell::for_gate(kind);
        let sites = base.defect_sites();
        let mut equivalent = 0;
        let mut fn_changed = 0;
        let mut stateful = 0;
        let mut fights = 0;
        let mut delayed = 0;
        for &site in &sites {
            let mut cell = base.clone();
            cell.inject(site).unwrap();
            let a = analyze_cell(&cell);
            if a.is_equivalent() {
                equivalent += 1;
            }
            if a.changes_function {
                fn_changed += 1;
            }
            if a.introduces_state {
                stateful += 1;
            }
            if a.ground_fights {
                fights += 1;
            }
            if a.has_delay {
                delayed += 1;
            }
        }
        let n = sites.len();
        println!(
            "{:<8}{:>7}{:>12}{:>14}{:>12}{:>10}{:>12}",
            kind.to_string(),
            n,
            pct(equivalent as f64 / n as f64),
            pct(fn_changed as f64 / n as f64),
            pct(stateful as f64 / n as f64),
            pct(fights as f64 / n as f64),
            pct(delayed as f64 / n as f64),
        );
        for (t, v) in totals
            .iter_mut()
            .zip([n, equivalent, fn_changed, stateful, fights, delayed])
        {
            *t += v;
        }
    }
    rule(75);
    let n = totals[0] as f64;
    println!(
        "{:<8}{:>7}{:>12}{:>14}{:>12}{:>10}{:>12}",
        "all",
        totals[0],
        pct(totals[1] as f64 / n),
        pct(totals[2] as f64 / n),
        pct(totals[3] as f64 / n),
        pct(totals[4] as f64 / n),
        pct(totals[5] as f64 / n),
    );
    println!(
        "\nstate-introducing and rail-fighting defects are exactly the cases a \
         gate-level stuck-at model cannot express — the divergence measured in \
         Figure 5."
    );
}
