//! Analysis: the §III-B taxonomy of transistor-defect effects per cell
//! type — quantifying the paper's claim that "the actual behavior of a
//! faulty ANN circuit ... cannot be modeled using a stuck logic gate
//! input: the logic gate function will be changed, or it will be
//! transformed into a state element, or it can depend on free floating
//! devices".
//!
//! Every single-defect site of every standard cell is analyzed through
//! the reconstructed (Z_P, Z_N) expressions.
//!
//! ```sh
//! cargo run --release -p dta-bench --bin exp_fault_classes
//! cargo run --release -p dta-bench --bin exp_fault_classes -- --threads 0
//! ```

use dta_bench::{pct, rule, Args};
use dta_core::parallel::parallel_map;
use dta_logic::GateKind;
use dta_transistor::{analyze_cell, CmosCell};

/// Per-cell tallies: `[sites, equivalent, fn changed, stateful, fights,
/// delayed]`.
fn classify(kind: GateKind) -> [usize; 6] {
    let base = CmosCell::for_gate(kind);
    let sites = base.defect_sites();
    let mut row = [sites.len(), 0, 0, 0, 0, 0];
    for &site in &sites {
        let mut cell = base.clone();
        if let Err(e) = cell.inject(site) {
            // `defect_sites()` enumerates valid sites, so this is a
            // model-invariant violation — report it and stop instead of
            // unwinding through the worker pool with a backtrace.
            eprintln!("exp_fault_classes: {kind} site {site:?}: {e}");
            std::process::exit(1);
        }
        let a = analyze_cell(&cell);
        for (slot, hit) in row.iter_mut().skip(1).zip([
            a.is_equivalent(),
            a.changes_function,
            a.introduces_state,
            a.ground_fights,
            a.has_delay,
        ]) {
            *slot += usize::from(hit);
        }
    }
    row
}

fn main() {
    let args = Args::parse();
    let threads = args.get("threads", 1usize);

    println!("Single-defect effect classes per standard cell (all sites)\n");
    println!(
        "{:<8}{:>7}{:>12}{:>14}{:>12}{:>10}{:>12}",
        "cell", "sites", "equivalent", "fn changed", "stateful", "fights", "delayed"
    );
    rule(75);

    // Each cell kind reconstructs and analyzes every defect site
    // independently, so the kinds fan out over the worker pool; rows are
    // returned (and printed) in `GateKind::ALL` order regardless of the
    // thread count.
    let rows = parallel_map(GateKind::ALL.len(), threads, |i| classify(GateKind::ALL[i]));

    let mut totals = [0usize; 6];
    for (kind, row) in GateKind::ALL.iter().zip(&rows) {
        let [n, equivalent, fn_changed, stateful, fights, delayed] = *row;
        println!(
            "{:<8}{:>7}{:>12}{:>14}{:>12}{:>10}{:>12}",
            kind.to_string(),
            n,
            pct(equivalent as f64 / n as f64),
            pct(fn_changed as f64 / n as f64),
            pct(stateful as f64 / n as f64),
            pct(fights as f64 / n as f64),
            pct(delayed as f64 / n as f64),
        );
        for (t, v) in totals.iter_mut().zip(row) {
            *t += v;
        }
    }
    rule(75);
    let n = totals[0] as f64;
    println!(
        "{:<8}{:>7}{:>12}{:>14}{:>12}{:>10}{:>12}",
        "all",
        totals[0],
        pct(totals[1] as f64 / n),
        pct(totals[2] as f64 / n),
        pct(totals[3] as f64 / n),
        pct(totals[4] as f64 / n),
        pct(totals[5] as f64 / n),
    );
    println!(
        "\nstate-introducing and rail-fighting defects are exactly the cases a \
         gate-level stuck-at model cannot express — the divergence measured in \
         Figure 5."
    );
}
