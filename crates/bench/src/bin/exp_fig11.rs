//! Figure 11: accuracy vs. error amplitude for single defects in the
//! output layer's sensitive units (final adders and activation
//! functions), after retraining.
//!
//! ```sh
//! cargo run --release -p dta-bench --bin exp_fig11 -- --tasks iris,ionosphere --reps 20
//! ```

use dta_bench::{rule, Args};
use dta_core::campaign::{output_amplitude_curve, OutputSite};
use dta_datasets::suite;

fn main() {
    let args = Args::parse();
    let task_names = args.get_str_list("tasks", &["iris", "ionosphere", "wine"]);
    let reps = args.get("reps", 12usize);
    let epochs = args.get("epochs", 25usize);
    let seed = args.get("seed", 0xF1611u64);
    let threads = args.get("threads", 1usize);

    println!("Figure 11 — accuracy vs. error amplitude for single output-layer defects");
    println!("({reps} random single-defect networks per task, retrained)\n");

    // Amplitude decades, as on the paper's log x-axis.
    let edges = [0.0, 0.001, 0.01, 0.1, 1.0, 10.0, 100.0, f64::INFINITY];
    let label = |i: usize| -> String {
        match i {
            0 => "<0.001".into(),
            _ if edges[i + 1].is_infinite() => format!(">{}", edges[i]),
            _ => format!("{}..{}", edges[i], edges[i + 1]),
        }
    };

    for name in &task_names {
        let Some(spec) = suite::specs().into_iter().find(|s| s.name == name) else {
            eprintln!("unknown task `{name}`, skipping");
            continue;
        };
        let points = output_amplitude_curve(&spec, reps, Some(epochs), seed, threads);
        println!("== {} ==", spec.name);
        println!(
            "{:<14}{:>8}{:>12}{:>10}",
            "amplitude", "count", "mean acc", "sites"
        );
        rule(44);
        for i in 0..edges.len() - 1 {
            let bucket: Vec<_> = points
                .iter()
                .filter(|p| p.amplitude >= edges[i] && p.amplitude < edges[i + 1])
                .collect();
            if bucket.is_empty() {
                continue;
            }
            let mean_acc = bucket.iter().map(|p| p.accuracy).sum::<f64>() / bucket.len() as f64;
            let adders = bucket
                .iter()
                .filter(|p| p.site == OutputSite::Adder)
                .count();
            println!(
                "{:<14}{:>8}{:>11.1}%{:>7}A{:>2}F",
                label(i),
                bucket.len(),
                mean_acc * 100.0,
                adders,
                bucket.len() - adders
            );
        }
        println!();
    }
    println!(
        "expected shape: accuracy holds while the amplitude cannot sway the \
         class, then degrades; amplitude-sensitive tasks (iris-like) fall \
         earlier than robust ones (ionosphere-like)."
    );
}
