//! Figure 10: accuracy vs. number of defects in the input and hidden
//! layers, after retraining.
//!
//! Defaults are scaled down to finish in minutes; the paper's full
//! setting is `--tasks all --reps 100 --folds 10 --epochs 0 --counts
//! 0,3,6,9,12,15,18,21,24,27` (where `--epochs 0` means "use each
//! task's Table II epochs").
//!
//! ```sh
//! cargo run --release -p dta-bench --bin exp_fig10
//! cargo run --release -p dta-bench --bin exp_fig10 -- --tasks iris,wine --reps 5
//! ```

use dta_bench::{rule, Args};
use dta_circuits::FaultModel;
use dta_core::campaign::{defect_tolerance_curve, CampaignConfig};
use dta_datasets::suite;

fn main() {
    let args = Args::parse();
    let task_names = {
        let requested = args.get_str_list("tasks", &["iris", "wine", "glass"]);
        if requested == ["all"] {
            suite::specs().iter().map(|s| s.name.to_string()).collect()
        } else {
            requested
        }
    };
    let epochs = args.get("epochs", 30usize);
    let cfg = CampaignConfig {
        defect_counts: args.get_usize_list("counts", &[0, 3, 6, 9, 12, 18, 24, 27]),
        repetitions: args.get("reps", 3usize),
        folds: args.get("folds", 3usize),
        epochs: if epochs == 0 { None } else { Some(epochs) },
        model: match args.get_str_list("model", &["transistor"])[0].as_str() {
            "gate" => FaultModel::GateLevel,
            _ => FaultModel::TransistorLevel,
        },
        seed: args.get("seed", 0xF1610u64),
    };

    println!(
        "Figure 10 — accuracy vs. #defects in input+hidden layers, after retraining"
    );
    println!(
        "({} reps, {} folds, epochs {:?}, {:?} faults)\n",
        cfg.repetitions, cfg.folds, cfg.epochs, cfg.model
    );
    print!("{:<12}", "task");
    for &d in &cfg.defect_counts {
        print!("{d:>8}");
    }
    println!();
    rule(12 + 8 * cfg.defect_counts.len());

    let mut clean_acc = Vec::new();
    let mut at_12 = Vec::new();
    for name in &task_names {
        let Some(spec) = suite::specs().into_iter().find(|s| &s.name == name) else {
            eprintln!("unknown task `{name}`, skipping");
            continue;
        };
        let curve = defect_tolerance_curve(&spec, &cfg);
        print!("{:<12}", spec.name);
        for p in &curve {
            print!("{:>7.1}%", p.mean_accuracy * 100.0);
        }
        println!();
        if let Some(p0) = curve.first() {
            clean_acc.push(p0.mean_accuracy);
        }
        if let Some(p12) = curve.iter().find(|p| p.defects >= 12) {
            at_12.push(p12.mean_accuracy);
        }
    }

    if !clean_acc.is_empty() && !at_12.is_empty() {
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        let drop = mean(&clean_acc) - mean(&at_12);
        println!(
            "\nmean accuracy drop from 0 to ~12 defects: {:.1} points",
            drop * 100.0
        );
        println!(
            "paper claim: 'the accelerator can tolerate up to 12 defects' — \
             degradation should stay small here, then steepen toward 27."
        );
    }
}
