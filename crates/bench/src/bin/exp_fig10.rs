//! Figure 10: accuracy vs. number of defects in the input and hidden
//! layers, after retraining.
//!
//! Defaults are scaled down to finish in minutes; the paper's full
//! setting is `--tasks all --reps 100 --folds 10 --epochs 0 --counts
//! 0,3,6,9,12,15,18,21,24,27` (where `--epochs 0` means "use each
//! task's Table II epochs").
//!
//! ```sh
//! cargo run --release -p dta-bench --bin exp_fig10
//! cargo run --release -p dta-bench --bin exp_fig10 -- --tasks iris,wine --reps 5
//! cargo run --release -p dta-bench --bin exp_fig10 -- --threads 0 --serial true
//! ```
//!
//! Every run times the campaign and writes a machine-readable perf
//! record to `BENCH_campaign.json` (`--bench-out` overrides the path).
//! `--threads N` fans the (defect-count × repetition) grid over N
//! workers (0 = all cores) with bit-identical results; `--serial true`
//! adds a one-thread reference run, `--baseline true` adds a reference
//! run on the seed's uncached switch-level evaluator, so the JSON
//! records honest speedup factors for both optimizations.
//! `--checkpoint FILE` journals each finished grid cell: a killed run
//! restarted with the same flags skips the journaled cells and
//! reproduces the uninterrupted curve byte-for-byte. `--lutpar true`
//! additionally times the row-parallel gate engines at the campaign
//! thread count vs. one thread (bit-identity asserted) and adds the
//! numbers to the perf record: `PartitionedLutExec` on the Q6.10
//! multiplier netlist, and `PartitionedFusedExec` on a fused
//! two-multiplier stream (a defect-patched multiplier feeding a
//! healthy one) so the fused instruction stream's thread scaling is
//! measured alongside the per-operator engine's.

use std::time::Instant;

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use dta_bench::{rule, Args, JsonMap};
use dta_circuits::multiplier::FxMulCircuit;
use dta_circuits::{force_switch_level_baseline, Activation, FaultModel};
use dta_core::campaign::{defect_tolerance_curve_resumable, CampaignConfig, CurvePoint};
use dta_core::checkpoint::Checkpoint;
use dta_core::parallel::effective_threads;
use dta_core::{PartitionedFusedExec, PartitionedLutExec};
use dta_datasets::{suite, TaskSpec};

/// Batched 64-lane passes for the `--lutpar` timing loop.
const LUTPAR_ITERS: usize = 4000;

/// Times `LUTPAR_ITERS` batched multiplier evaluations on the
/// partitioned engine and returns every batch's output words plus the
/// wall time. The input stream is re-seeded per call so every thread
/// count sees identical work.
fn time_lutpar(mul: &FxMulCircuit, threads: usize) -> (Vec<Vec<u64>>, f64) {
    // Program lowering is cached and excluded from the timed region —
    // this measures the executor, not the compile.
    let prog = dta_logic::LutProgram::cached(mul.netlist());
    let mut par = PartitionedLutExec::new(prog, threads);
    let mut rng = ChaCha8Rng::seed_from_u64(0x1F7);
    // One untimed pass warms caches and worker threads.
    par.exec();
    let started = Instant::now();
    let mut outputs = Vec::with_capacity(LUTPAR_ITERS);
    for _ in 0..LUTPAR_ITERS {
        let a: Vec<u64> = (0..64).map(|_| u64::from(rng.random::<u16>())).collect();
        let b: Vec<u64> = (0..64).map(|_| u64::from(rng.random::<u16>())).collect();
        par.set_input_words(mul.a_bus(), &a);
        par.set_input_words(mul.b_bus(), &b);
        par.exec();
        outputs.push(par.read_words(mul.out_bus(), 64));
    }
    (outputs, started.elapsed().as_secs_f64())
}

/// Fuses a defect-patched Q6.10 multiplier feeding a healthy one into
/// a single two-stage instruction stream — the smallest cross-operator
/// fused program with a real inter-stage data dependency. Returns the
/// program plus its `a`/`b` input buses and the chained output bus.
fn fused_mul_chain() -> (
    std::sync::Arc<dta_logic::FusedProgram>,
    Vec<u32>,
    Vec<u32>,
    Vec<u32>,
) {
    let mul = FxMulCircuit::new();
    let mut rng = ChaCha8Rng::seed_from_u64(0x2F7);
    let mut plan = dta_circuits::DefectPlan::new(FaultModel::GateLevel);
    for _ in 0..2 {
        plan.add_random(mul.netlist(), mul.cells(), &mut rng);
    }
    let mut patched = mul.lut_exec();
    assert!(plan.apply_lut(&mut patched), "gate-level permanents patch");

    let local =
        |bus: &[dta_logic::NodeId]| -> Vec<u32> { bus.iter().map(|n| n.index() as u32).collect() };
    let mut fb = dta_logic::FuseBuilder::new();
    let a = fb.fresh_bus(16);
    let b = fb.fresh_bus(16);
    let bind1: Vec<(u32, u32)> = local(mul.a_bus())
        .into_iter()
        .zip(a.iter().copied())
        .chain(local(mul.b_bus()).into_iter().zip(b.iter().copied()))
        .collect();
    let m1 = fb.append(
        patched.instrs(),
        patched.program().n_slots(),
        patched.program().latch_slots(),
        &bind1,
    );
    fb.barrier();
    // Healthy second multiplier: a-operand wired to the patched
    // product, b-operand shared with the first stage.
    let healthy = mul.lut_exec();
    let bind2: Vec<(u32, u32)> = local(mul.a_bus())
        .into_iter()
        .zip(local(mul.out_bus()).iter().map(|&s| m1[s as usize]))
        .chain(local(mul.b_bus()).into_iter().zip(b.iter().copied()))
        .collect();
    let m2 = fb.append(
        healthy.instrs(),
        healthy.program().n_slots(),
        healthy.program().latch_slots(),
        &bind2,
    );
    let out: Vec<u32> = local(mul.out_bus())
        .iter()
        .map(|&s| m2[s as usize])
        .collect();
    (std::sync::Arc::new(fb.finish()), a, b, out)
}

/// Times `LUTPAR_ITERS` batched evaluations of the fused
/// two-multiplier stream on `PartitionedFusedExec` and returns every
/// batch's output words plus the wall time. Same re-seeded input
/// stream per call so every thread count sees identical work.
fn time_fusedpar(
    prog: &std::sync::Arc<dta_logic::FusedProgram>,
    a: &[u32],
    b: &[u32],
    out: &[u32],
    threads: usize,
) -> (Vec<Vec<u64>>, f64) {
    let mut par = PartitionedFusedExec::new(std::sync::Arc::clone(prog), threads);
    let mut rng = ChaCha8Rng::seed_from_u64(0x3F7);
    // One untimed pass warms caches and worker threads.
    par.exec();
    let started = Instant::now();
    let mut outputs = Vec::with_capacity(LUTPAR_ITERS);
    for _ in 0..LUTPAR_ITERS {
        let av: Vec<u64> = (0..64).map(|_| u64::from(rng.random::<u16>())).collect();
        let bv: Vec<u64> = (0..64).map(|_| u64::from(rng.random::<u16>())).collect();
        par.set_bus_words(a, &av);
        par.set_bus_words(b, &bv);
        par.exec();
        outputs.push(par.read_words(out, 64));
    }
    (outputs, started.elapsed().as_secs_f64())
}

/// Runs the full campaign (every task) once and returns the per-task
/// curves plus the wall time. Campaign errors (bad configuration, bad
/// journal) abort the binary with a message.
fn run_campaign(
    specs: &[TaskSpec],
    cfg: &CampaignConfig,
    checkpoint: Option<&Checkpoint>,
) -> (Vec<Vec<CurvePoint>>, f64) {
    let started = Instant::now();
    let curves = specs
        .iter()
        .map(|spec| {
            defect_tolerance_curve_resumable(spec, cfg, checkpoint).unwrap_or_else(|e| {
                eprintln!("campaign failed: {e}");
                std::process::exit(1);
            })
        })
        .collect();
    (curves, started.elapsed().as_secs_f64())
}

fn main() {
    let args = Args::parse();
    let task_names = {
        let requested = args.get_str_list("tasks", &["iris", "wine", "glass"]);
        if requested == ["all"] {
            suite::specs().iter().map(|s| s.name.to_string()).collect()
        } else {
            requested
        }
    };
    let epochs = args.get("epochs", 30usize);
    let cfg = CampaignConfig {
        defect_counts: args.get_usize_list("counts", &[0, 3, 6, 9, 12, 18, 24, 27]),
        repetitions: args.get("reps", 3usize),
        folds: args.get("folds", 3usize),
        epochs: if epochs == 0 { None } else { Some(epochs) },
        model: match args.get_str_list("model", &["transistor"])[0].as_str() {
            "gate" => FaultModel::GateLevel,
            _ => FaultModel::TransistorLevel,
        },
        activation: Activation::Permanent,
        seed: args.get("seed", 0xF1610u64),
        threads: args.get("threads", 1usize),
        chaos: Vec::new(),
        mem: None,
        combined: false,
    };
    // `--checkpoint FILE` journals finished grid cells so a killed run
    // resumes where it left off (and reproduces the same curve).
    let checkpoint = args.get_opt_str("checkpoint").map(|path| {
        match Checkpoint::open(path, &cfg.fingerprint()) {
            Ok(ck) => {
                if ck.completed() > 0 {
                    println!("resuming from {path}: {} cells journaled", ck.completed());
                }
                ck
            }
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(1);
            }
        }
    });

    println!("Figure 10 — accuracy vs. #defects in input+hidden layers, after retraining");
    println!(
        "({} reps, {} folds, epochs {:?}, {:?} faults)\n",
        cfg.repetitions, cfg.folds, cfg.epochs, cfg.model
    );
    print!("{:<12}", "task");
    for &d in &cfg.defect_counts {
        print!("{d:>8}");
    }
    println!();
    rule(12 + 8 * cfg.defect_counts.len());

    let specs: Vec<TaskSpec> = task_names
        .iter()
        .filter_map(|name| {
            let spec = suite::specs().into_iter().find(|s| s.name == name);
            if spec.is_none() {
                eprintln!("unknown task `{name}`, skipping");
            }
            spec
        })
        .collect();

    let (curves, wall_s) = run_campaign(&specs, &cfg, checkpoint.as_ref());

    let mut clean_acc = Vec::new();
    let mut at_12 = Vec::new();
    for (spec, curve) in specs.iter().zip(&curves) {
        print!("{:<12}", spec.name);
        for p in curve {
            print!("{:>7.1}%", p.mean_accuracy * 100.0);
        }
        println!();
        if let Some(p0) = curve.first() {
            clean_acc.push(p0.mean_accuracy);
        }
        if let Some(p12) = curve.iter().find(|p| p.defects >= 12) {
            at_12.push(p12.mean_accuracy);
        }
    }

    if !clean_acc.is_empty() && !at_12.is_empty() {
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        let drop = mean(&clean_acc) - mean(&at_12);
        println!(
            "\nmean accuracy drop from 0 to ~12 defects: {:.1} points",
            drop * 100.0
        );
        println!(
            "paper claim: 'the accelerator can tolerate up to 12 defects' — \
             degradation should stay small here, then steepen toward 27."
        );
    }

    // --- Perf record -----------------------------------------------------
    // One grid cell = train + cross-validate one (defect count, rep) pair
    // for one task. Optional reference runs quantify the two tentpole
    // optimizations: `--serial true` re-runs on one thread (parallel
    // speedup), `--baseline true` re-runs on the seed's uncached
    // switch-level evaluator (truth-table-cache speedup). Both re-runs
    // reproduce the measured curves bit-for-bit; only the wall time moves.
    let cells = (specs.len() * cfg.defect_counts.len() * cfg.repetitions) as u64;
    let threads_used = effective_threads(cfg.threads);
    println!(
        "\ncampaign: {cells} cells in {wall_s:.2} s on {threads_used} thread(s) \
         ({:.2} cells/s)",
        cells as f64 / wall_s
    );

    // On one thread the measured run *is* the serial reference — record
    // it as such instead of leaving the fields null.
    let serial_wall_s = if threads_used == 1 {
        Some(wall_s)
    } else {
        args.get_bool("serial", false).then(|| {
            let serial_cfg = CampaignConfig {
                threads: 1,
                ..cfg.clone()
            };
            // Reference runs recompute from scratch — no checkpoint — so
            // the timing is honest.
            let (serial_curves, t) = run_campaign(&specs, &serial_cfg, None);
            assert_eq!(serial_curves, curves, "serial run must be bit-identical");
            println!("serial reference: {t:.2} s ({:.2}x speedup)", t / wall_s);
            t
        })
    };

    let switch_level_wall_s = args.get_bool("baseline", false).then(|| {
        force_switch_level_baseline(true);
        let (baseline_curves, t) = run_campaign(&specs, &cfg, None);
        force_switch_level_baseline(false);
        assert_eq!(
            baseline_curves, curves,
            "switch-level baseline must be bit-identical"
        );
        println!(
            "uncached switch-level reference: {t:.2} s \
             (truth-table cache speedup {:.2}x)",
            t / wall_s
        );
        t
    });

    // --- Row-parallel gate engine timing (--lutpar true) -----------------
    // The campaign numbers above time the whole train/evaluate pipeline;
    // this isolates the `PartitionedLutExec` rank-parallel executor on
    // the Q6.10 multiplier netlist, same-work serial reference included.
    let lutpar = args.get_bool("lutpar", false).then(|| {
        let mul = FxMulCircuit::new();
        let (par_out, par_s) = time_lutpar(&mul, threads_used);
        let (ser_out, ser_s) = time_lutpar(&mul, 1);
        assert_eq!(par_out, ser_out, "partitioned engine must be bit-identical");
        println!(
            "lutpar: {LUTPAR_ITERS} x 64-lane multiplier batches — {par_s:.3} s on \
             {threads_used} thread(s), {ser_s:.3} s serial ({:.2}x)",
            ser_s / par_s
        );
        // Same measurement on the fused cross-operator stream: the
        // partitioned executor splits each rank across workers, so the
        // fused program's wider ranks should scale at least as well.
        let (prog, a, b, out) = fused_mul_chain();
        let (fpar_out, fpar_s) = time_fusedpar(&prog, &a, &b, &out, threads_used);
        let (fser_out, fser_s) = time_fusedpar(&prog, &a, &b, &out, 1);
        assert_eq!(fpar_out, fser_out, "fused engine must be bit-identical");
        println!(
            "fusedpar: {LUTPAR_ITERS} x 64-lane fused mul-chain batches — {fpar_s:.3} s \
             on {threads_used} thread(s), {fser_s:.3} s serial ({:.2}x)",
            fser_s / fpar_s
        );
        (par_s, ser_s, fpar_s, fser_s)
    });

    let out_path = args.get("bench-out", "BENCH_campaign.json".to_string());
    let record = JsonMap::new()
        .str("bin", "exp_fig10")
        .str_list(
            "tasks",
            &specs.iter().map(|s| s.name.to_string()).collect::<Vec<_>>(),
        )
        .int_list("defect_counts", &cfg.defect_counts)
        .int("repetitions", cfg.repetitions as u64)
        .int("folds", cfg.folds as u64)
        .int("threads", threads_used as u64)
        .int("cells", cells)
        .num("wall_s", wall_s)
        .num("cells_per_s", cells as f64 / wall_s)
        .opt_num("serial_wall_s", serial_wall_s)
        .opt_num("speedup_vs_serial", serial_wall_s.map(|t| t / wall_s))
        .opt_num("switch_level_wall_s", switch_level_wall_s)
        .opt_num(
            "speedup_vs_switch_level",
            switch_level_wall_s.map(|t| t / wall_s),
        )
        .int("lutpar_iters", lutpar.map_or(0, |_| LUTPAR_ITERS as u64))
        .opt_num("lutpar_wall_s", lutpar.map(|(p, ..)| p))
        .opt_num("lutpar_serial_wall_s", lutpar.map(|(_, s, ..)| s))
        .opt_num("lutpar_speedup", lutpar.map(|(p, s, ..)| s / p))
        .opt_num("fusedpar_wall_s", lutpar.map(|(.., fp, _)| fp))
        .opt_num("fusedpar_serial_wall_s", lutpar.map(|(.., fs)| fs))
        .opt_num("fusedpar_speedup", lutpar.map(|(.., fp, fs)| fs / fp));
    match record.write(&out_path) {
        Ok(()) => println!("perf record written to {out_path}"),
        Err(e) => eprintln!("could not write {out_path}: {e}"),
    }
}
