//! Tables I & II: hyper-parameter grid search per benchmark task.
//!
//! By default a coarse sub-grid of the Table I space is searched with
//! 3-fold cross-validation (minutes); `--full true` searches the
//! complete 3888-configuration Table I grid with 10 folds (very long,
//! as in the paper).
//!
//! ```sh
//! cargo run --release -p dta-bench --bin exp_table2
//! cargo run --release -p dta-bench --bin exp_table2 -- --tasks iris,wine
//! ```

use dta_ann::hyper::{search, HyperSpace};
use dta_bench::{pct, rule, Args};
use dta_datasets::suite;

fn main() {
    let args = Args::parse();
    let full = args.get_bool("full", false);
    let folds = args.get("folds", if full { 10 } else { 3 });
    let task_names = args.get_str_list("tasks", &["iris", "wine", "glass", "vehicle"]);
    let seed = args.get("seed", 0x7AB1Eu64);

    let space = if full {
        HyperSpace::table1()
    } else {
        // The coarse grid spans the Table I ranges with 48 configs.
        HyperSpace::coarse()
    };
    println!(
        "Table II — best hyper-parameters per task ({} configs x {folds}-fold CV)",
        space.len()
    );
    println!(
        "Table I space: hidden {:?}, epochs {:?}, lr {:?}, momentum {:?}\n",
        HyperSpace::table1().hidden,
        HyperSpace::table1().epochs,
        HyperSpace::table1().learning_rates,
        HyperSpace::table1().momenta,
    );
    println!(
        "{:<12}{:>8}{:>8}{:>8}{:>10}{:>10}   paper (lr, epochs, hidden)",
        "task", "lr", "epochs", "hidden", "momentum", "accuracy"
    );
    rule(86);
    for name in &task_names {
        let Some(spec) = suite::specs().into_iter().find(|s| s.name == name) else {
            eprintln!("unknown task `{name}`, skipping");
            continue;
        };
        let ds = spec.dataset();
        let result = search(&ds, &space, folds, seed);
        println!(
            "{:<12}{:>8}{:>8}{:>8}{:>10}{:>10}   ({}, {}, {})",
            spec.name,
            result.best.learning_rate,
            result.best.epochs,
            result.best.hidden,
            result.best.momentum,
            pct(result.accuracy),
            spec.learning_rate,
            spec.epochs,
            spec.hidden,
        );
    }
    println!(
        "\n(data is synthetic with Table II dimensions, so our optima need not \
         equal the paper's; the search harness and space are identical)"
    );
}
