//! Experiment: the online defect detect → diagnose → recover pipeline.
//!
//! For each defect count, a commissioned accelerator (clean-trained on
//! the task) is damaged with random transistor-level defects, then:
//!
//! 1. the signature BIST of `dta-core::selftest` localizes the damage
//!    (detection rate and localization precision are scored against the
//!    injected ground truth);
//! 2. the recovery ladder of `dta-core::recover` runs twice on twin
//!    copies of the damaged array — once *blind* (retrain only, the
//!    paper's Figure 10 mechanism) and once with the full pipeline
//!    (retrain, then diagnosis-guided remap/mask onto spare lanes, then
//!    graceful degradation).
//!
//! Both arms share seeds and budgets, so the pipeline arm can never end
//! below the blind arm — the table quantifies how much the diagnosis
//! buys on top of blind retraining. The twin-arm protocol itself lives
//! in [`dta_bench::twin`], shared with `exp_memfault` and
//! `exp_systolic`.
//!
//! ```sh
//! cargo run --release -p dta-bench --bin exp_recovery
//! cargo run --release -p dta-bench --bin exp_recovery -- --counts 0,2,6 --reps 1
//! ```

use std::time::Instant;

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use dta_bench::twin;
use dta_bench::{pct, require_task, rule, Args, JsonMap};
use dta_circuits::FaultModel;
use dta_core::{
    detection_rate, localization_precision, Accelerator, RecoveryPolicy, RecoveryRung, RungBudget,
};
use dta_datasets::{Dataset, TaskSpec};

const BIN: &str = "exp_recovery";

/// One (defect count × repetition) cell of the sweep: the shared twin
/// accuracies plus the diagnosis scores this campaign adds on top.
struct CellResult {
    twin: twin::TwinCell,
    detection: Option<f64>,
    precision: Option<f64>,
    final_rung: RecoveryRung,
}

/// Everything shared by every cell of the sweep.
struct Sweep<'a> {
    spec: &'a TaskSpec,
    ds: &'a Dataset,
    epochs: usize,
    policy_base: RecoveryPolicy,
    target_drop: f64,
    seed: u64,
}

impl Sweep<'_> {
    fn run_cell(&self, defects: usize, rep: usize) -> CellResult {
        let (spec, ds, epochs) = (self.spec, self.ds, self.epochs);
        let cell_seed = self.seed ^ (defects as u64) << 24 ^ (rep as u64) << 8;
        let folds = ds.k_folds(5, self.seed ^ rep as u64);
        let fold = &folds[0];

        let commission = || {
            twin::commission(
                BIN,
                Accelerator::new(),
                spec,
                ds,
                &fold.train,
                epochs,
                cell_seed,
            )
        };
        let race = twin::run_twin_race(
            BIN,
            &format!("defects={defects} rep={rep}"),
            || {
                let mut accel = commission();
                let mut rng = ChaCha8Rng::seed_from_u64(cell_seed ^ 0xFA11);
                accel
                    .inject_defects(defects, FaultModel::TransistorLevel, &mut rng)
                    .unwrap_or_else(|e| {
                        twin::die(
                            BIN,
                            &format!("defects={defects} rep={rep}"),
                            "injection",
                            &e,
                        )
                    });
                accel
            },
            commission,
            ds,
            fold,
            &self.policy_base,
            self.target_drop,
            cell_seed,
        );

        // Score the diagnosis against the injected ground truth (the
        // truth list is injection-order and immutable under recovery).
        let truth = race.full_accel.faults().sites().to_vec();
        CellResult {
            twin: race.cell,
            detection: detection_rate(&truth, &race.diagnosis.flagged),
            precision: localization_precision(&truth, &race.diagnosis.flagged),
            final_rung: race
                .full_report
                .final_rung()
                .unwrap_or(RecoveryRung::Retrain),
        }
    }
}

fn main() {
    let args = Args::parse();
    let task = args.get_str_list("task", &["iris"])[0].clone();
    let counts = args.get_usize_list("counts", &[0, 1, 3, 6, 9, 12, 15, 18, 21, 24, 27]);
    let reps = args.get("reps", 2usize);
    let epochs = args.get("epochs", 30usize);
    let recovery_epochs = args.get("recovery-epochs", 24usize);
    let budget_ms = args.get("budget-ms", 60_000u64);
    let target_drop = args.get("target-drop", 0.02f64);
    let seed = args.get("seed", 0x6EC0u64);
    let bench_out = args
        .get_opt_str("bench-out")
        .unwrap_or("BENCH_recovery.json");

    let spec = require_task(&task);
    let ds = spec.dataset();
    let budget = RungBudget {
        max_epochs: recovery_epochs,
        wall_clock_ms: budget_ms,
    };
    let sweep = Sweep {
        spec: &spec,
        ds: &ds,
        epochs,
        policy_base: RecoveryPolicy {
            retrain: budget,
            remap: budget,
            learning_rate: spec.learning_rate,
            momentum: 0.1,
            ..RecoveryPolicy::default()
        },
        target_drop,
        seed,
    };

    println!(
        "Online recovery pipeline on {task}: {reps} rep(s) per defect count, \
         {recovery_epochs} epochs / {budget_ms} ms per rung, target drop {target_drop}\n"
    );
    println!(
        "{:<8}{:>8}{:>8}{:>8}{:>8}{:>8}{:>10}{:>8}{:>22}",
        "defects",
        "detect",
        "precis",
        "clean",
        "faulty",
        "blind",
        "recovered",
        "gain",
        "final rungs (R/M/D)"
    );
    rule(88);

    let start = Instant::now();
    let mut agg_detection = Vec::new();
    let mut agg_precision = Vec::new();
    let mut agg_clean = Vec::new();
    let mut agg_faulty = Vec::new();
    let mut agg_blind = Vec::new();
    let mut agg_recovered = Vec::new();
    for &defects in &counts {
        let cells: Vec<CellResult> = (0..reps).map(|rep| sweep.run_cell(defects, rep)).collect();
        let twins: Vec<twin::TwinCell> = cells.iter().map(|c| c.twin).collect();
        twin::assert_twin_floor(&twins, &format!("defects={defects}"));
        let detections: Vec<f64> = cells.iter().filter_map(|c| c.detection).collect();
        let precisions: Vec<f64> = cells.iter().filter_map(|c| c.precision).collect();
        let clean = twin::mean(&twins.iter().map(|c| c.clean).collect::<Vec<_>>());
        let faulty = twin::mean(&twins.iter().map(|c| c.faulty).collect::<Vec<_>>());
        let blind = twin::mean(&twins.iter().map(|c| c.blind).collect::<Vec<_>>());
        let recovered = twin::mean(&twins.iter().map(|c| c.recovered).collect::<Vec<_>>());
        let detection = twin::mean(&detections);
        let precision = twin::mean(&precisions);
        let rungs: Vec<usize> = [
            RecoveryRung::Retrain,
            RecoveryRung::Remap,
            RecoveryRung::Degrade,
        ]
        .iter()
        .map(|&r| cells.iter().filter(|c| c.final_rung == r).count())
        .collect();

        let fmt_opt = |v: f64| {
            if v.is_nan() {
                "-".to_string()
            } else {
                pct(v)
            }
        };
        println!(
            "{:<8}{:>8}{:>8}{:>8}{:>8}{:>8}{:>10}{:>8}{:>22}",
            defects,
            fmt_opt(detection),
            fmt_opt(precision),
            pct(clean),
            pct(faulty),
            pct(blind),
            pct(recovered),
            pct(recovered - blind),
            format!("{}/{}/{}", rungs[0], rungs[1], rungs[2]),
        );
        println!(
            "data {task} {defects} {detection:?} {precision:?} {clean:?} {faulty:?} \
             {blind:?} {recovered:?}"
        );
        agg_detection.push(detection);
        agg_precision.push(precision);
        agg_clean.push(clean);
        agg_faulty.push(faulty);
        agg_blind.push(blind);
        agg_recovered.push(recovered);
    }
    let wall_s = start.elapsed().as_secs_f64();
    rule(88);
    println!(
        "\nrecovered >= blind at every defect count (shared rung-1 trajectory); the gain \
         column is what diagnosis-guided remapping adds on top of blind retraining."
    );

    let json = JsonMap::new()
        .str("bin", "exp_recovery")
        .str("task", &task)
        .int_list("counts", &counts)
        .int("reps", reps as u64)
        .int("epochs", epochs as u64)
        .int("recovery_epochs", recovery_epochs as u64)
        .int("budget_ms", budget_ms)
        .num("target_drop", target_drop)
        .int("seed", seed)
        .num_list("detection", &agg_detection)
        .num_list("precision", &agg_precision)
        .num_list("clean", &agg_clean)
        .num_list("faulty", &agg_faulty)
        .num_list("blind", &agg_blind)
        .num_list("recovered", &agg_recovered)
        .num("wall_s", wall_s);
    if let Err(e) = json.write(bench_out) {
        eprintln!("exp_recovery: writing {bench_out}: {e}");
        std::process::exit(1);
    }
    println!("wrote {bench_out} ({wall_s:.1}s)");
}
