//! Table IV: processor execution characteristics and the
//! accelerator-vs-processor comparison (§VI-B).
//!
//! ```sh
//! cargo run --release -p dta-bench --bin exp_table4
//! ```

use dta_ann::Topology;
use dta_bench::rule;
use dta_core::cost::CostModel;
use dta_core::ProcessorModel;

fn main() {
    let topo = Topology::accelerator();
    let proc = ProcessorModel::stealey();
    let run = proc.run(topo);
    let accel = CostModel::calibrated_90nm().report(topo);

    println!("Table IV — Stealey-class processor running the {topo} software ANN\n");
    println!("{:<28}{:>14}{:>12}", "characteristic", "measured", "paper");
    rule(54);
    println!(
        "{:<28}{:>14.0}{:>12}",
        "clock (MHz)",
        proc.clock_hz / 1e6,
        800
    );
    println!(
        "{:<28}{:>14}{:>12}",
        "cycles per row", run.cycles_per_row, 19_680
    );
    println!(
        "{:<28}{:>14.2}{:>12.2}",
        "avg power per cycle (W)", proc.avg_power_w, 2.78
    );
    println!(
        "{:<28}{:>14.0}{:>12}",
        "energy per row (nJ)", run.energy_per_row_nj, 68_388
    );

    println!("\nAccelerator vs. processor (§VI-B):");
    rule(54);
    println!(
        "{:<34}{:>10.2} vs {:>8.2}",
        "power (W, accel vs core)", accel.power_w, proc.avg_power_w
    );
    println!(
        "{:<34}{:>10.2} vs {:>8.0}",
        "time per row (ns)", accel.latency_ns, run.time_per_row_ns
    );
    println!(
        "{:<34}{:>10.2} vs {:>8.0}",
        "energy per row (nJ)", accel.energy_per_row_nj, run.energy_per_row_nj
    );
    println!(
        "\nenergy ratio: {:.0}x   speedup: {:.0}x",
        proc.energy_ratio(topo, &accel),
        proc.speedup(topo, &accel)
    );
    println!(
        "(the accelerator draws MORE power but finishes ~1650x sooner, so it \
         wins ~975x on energy — consistent with Hameed et al.'s ~500x for \
         H.264 ASICs vs cores)"
    );
}
