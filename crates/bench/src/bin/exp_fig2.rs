//! Figure 2: cumulative distribution of UCI datasets by number of
//! attributes — the justification for the 90-input design point.
//!
//! ```sh
//! cargo run --release -p dta-bench --bin exp_fig2
//! ```

use dta_datasets::catalog;

fn main() {
    println!("Figure 2 — Distribution of UCI data sets vs. #attributes");
    println!("({} catalog datasets)\n", catalog::len());
    println!("{:>12} {:>24}", "#attributes", "cumulated fraction");
    dta_bench::rule(38);
    for (x, frac) in catalog::figure2_points() {
        let label = if x == u32::MAX {
            ">10000".to_string()
        } else {
            x.to_string()
        };
        let bar = "#".repeat((frac * 40.0).round() as usize);
        println!("{label:>12} {:>10.3}  {bar}", frac);
    }
    println!(
        "\npaper claim: >92% of datasets have <100 attributes -> {}",
        dta_bench::pct(catalog::cumulative_fraction(99))
    );
    println!(
        "a 90-input network captures {} of the repository",
        dta_bench::pct(catalog::cumulative_fraction(90))
    );
}
