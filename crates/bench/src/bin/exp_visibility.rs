//! Analysis: single-defect visibility distribution — *why* the
//! accelerator tolerates defects.
//!
//! For each operator type, many independent single transistor-level
//! defects are injected and their divergence from the healthy operator
//! is measured over random operand vectors. The distribution shows that
//! a large share of physical defects are invisible or flip only
//! low-significance bits, which retraining absorbs; the tail of
//! high-impact defects is what eventually breaks accuracy in Figure 10.
//!
//! ```sh
//! cargo run --release -p dta-bench --bin exp_visibility -- --defects 100
//! ```

use dta_bench::{pct, rule, Args};
use dta_circuits::visibility::{
    adder_visibility, multiplier_visibility, sigmoid_visibility, VisibilityReport,
};
use dta_circuits::{FaultModel, HwAdder, HwMultiplier, HwSigmoid};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn summarize(name: &str, reports: &[VisibilityReport]) {
    let n = reports.len() as f64;
    let invisible = reports
        .iter()
        .filter(|r| r.visible_fraction < 0.005)
        .count();
    let rare = reports
        .iter()
        .filter(|r| (0.005..0.25).contains(&r.visible_fraction))
        .count();
    let frequent = reports.len() - invisible - rare;
    let mean_vis = reports.iter().map(|r| r.visible_fraction).sum::<f64>() / n;
    let mean_err = reports.iter().map(|r| r.mean_abs_error).sum::<f64>() / n;
    let worst = reports
        .iter()
        .map(|r| r.max_abs_error)
        .fold(0.0f64, f64::max);
    println!(
        "{:<12}{:>12}{:>12}{:>12}{:>12}{:>14.4}{:>12.2}",
        name,
        pct(invisible as f64 / n),
        pct(rare as f64 / n),
        pct(frequent as f64 / n),
        pct(mean_vis),
        mean_err,
        worst
    );
}

fn main() {
    let args = Args::parse();
    let defects = args.get("defects", 60usize);
    let samples = args.get("samples", 500usize);
    let seed = args.get("seed", 0x715u64);

    println!(
        "Single-defect visibility over {samples} random operand vectors, \
         {defects} defects per operator\n"
    );
    println!(
        "{:<12}{:>12}{:>12}{:>12}{:>12}{:>14}{:>12}",
        "operator", "invisible", "<25% vis", ">=25% vis", "mean vis", "mean |err|", "worst |err|"
    );
    rule(86);

    let mut mul_reports = Vec::new();
    let mut add_reports = Vec::new();
    let mut act_reports = Vec::new();
    for d in 0..defects {
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ (d as u64) << 8);

        let mut mul = HwMultiplier::new();
        mul.inject_random(FaultModel::TransistorLevel, 1, &mut rng);
        mul_reports.push(multiplier_visibility(&mut mul, samples, seed ^ d as u64));

        let mut add = HwAdder::new();
        add.inject_random(FaultModel::TransistorLevel, 1, &mut rng);
        add_reports.push(adder_visibility(&mut add, samples, seed ^ d as u64));

        let mut act = HwSigmoid::new();
        act.inject_random(FaultModel::TransistorLevel, 1, &mut rng);
        act_reports.push(sigmoid_visibility(&mut act, samples, seed ^ d as u64));
    }
    summarize("multiplier", &mul_reports);
    summarize("adder", &add_reports);
    summarize("sigmoid", &act_reports);

    println!(
        "\ninterpretation: invisible and rarely-visible defects explain the flat \
         region of Figure 10; the worst-|err| tail (sign/MSB corruption) is what \
         retraining must silence by de-weighting the affected neuron."
    );
}
