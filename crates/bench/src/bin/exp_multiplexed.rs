//! §IV partial time-multiplexing under defects: "if the spatially
//! expanded network is used in a partially time-multiplexed mode, it
//! remains tolerant to defects. However, a defect at a given hardware
//! neuron would affect all the neurons of the application network mapped
//! to it, effectively multiplying the number of defects by as much as
//! the multiplexing factor."
//!
//! A 200-input logical network (too wide for the 90-input array) is
//! trained *through the multiplexed forward path* with physical-slot
//! defects injected, and its accuracy is compared against the same
//! defect counts on an array-resident (90-input) task.
//!
//! ```sh
//! cargo run --release -p dta-bench --bin exp_multiplexed
//! ```

use dta_ann::{Mlp, Topology, Trainer};
use dta_bench::{pct, rule, Args};
use dta_core::large::LargeNetworkMapper;
use dta_datasets::GaussianMixture;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let args = Args::parse();
    let reps = args.get("reps", 2usize);
    let epochs = args.get("epochs", 20usize);
    let counts = args.get_usize_list("counts", &[0, 2, 4, 8, 12]);
    let seed = args.get("seed", 0x417u64);

    let ds = GaussianMixture::new(200, 4)
        .spread(0.15)
        .label_noise(0.03)
        .samples(300)
        .generate("wide-200", seed);
    let logical = Topology::new(200, 12, 4);
    let physical = Topology::accelerator();

    let probe = LargeNetworkMapper::new(physical);
    println!("Partial time-multiplexing under defects: {logical} over the {physical} array");
    println!(
        "({} jobs/row over {} slots = {} passes; defect multiplier {})\n",
        probe.jobs(logical),
        probe.slots(),
        probe.passes(logical),
        probe.defect_multiplier(logical)
    );

    println!(
        "{:<16}{:>22}{:>22}",
        "#slot defects", "multiplexed (acc)", "effective defects"
    );
    rule(60);

    let folds = ds.k_folds(3, seed);
    for &n in &counts {
        let mut accs = Vec::new();
        for rep in 0..reps {
            let mut rng = ChaCha8Rng::seed_from_u64(seed ^ (n as u64) << 16 ^ rep as u64);
            let mut mapper = LargeNetworkMapper::new(physical);
            for _ in 0..n {
                mapper.inject_random_defect(&mut rng);
            }
            let fold = &folds[rep % folds.len()];
            let mut mlp = Mlp::new(logical, seed ^ rep as u64);
            let trainer = Trainer::new(0.3, 0.2, epochs, dta_ann::ForwardMode::Fixed);
            // Train and evaluate through the multiplexed (faulty) path.
            trainer.train_with(&mut mlp, &ds, &fold.train, &mut rng, |m, x| {
                mapper.forward(m, x)
            });
            let acc = Trainer::evaluate_with(&mlp, &ds, &fold.test, |m, x| mapper.forward(m, x));
            accs.push(acc);
        }
        let mean = accs.iter().sum::<f64>() / accs.len() as f64;
        println!(
            "{:<16}{:>22}{:>22}",
            n,
            pct(mean),
            n * probe.defect_multiplier(logical)
        );
    }
    println!(
        "\nretraining through the multiplexed path keeps the wide network \
         usable; each physical defect counts {}x toward the application \
         network's budget, so tolerance is consumed faster than on the \
         array-resident tasks of Figure 10.",
        probe.defect_multiplier(logical)
    );
}
