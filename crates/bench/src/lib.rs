#![warn(missing_docs)]

//! Shared plumbing for the experiment binaries: a tiny `--key value`
//! argument parser and table-printing helpers.
//!
//! Every experiment binary (`exp_*`) regenerates one table or figure of
//! the paper; run them with `cargo run --release -p dta-bench --bin
//! exp_<name> -- [--key value ...]`. All accept `--help`-ish defaults:
//! invoked bare, they run a reduced configuration that finishes in
//! seconds to a few minutes; flags scale them up to the paper's full
//! settings.

use std::collections::HashMap;
use std::fmt::Display;
use std::str::FromStr;

pub mod twin;

pub use twin::{
    assert_twin_floor, commission, mean, open_checkpoint, record_twin, replay_twin, run_twin_race,
    TwinCell, TwinRace, TWIN_ARMS,
};

/// The `--key value` options the experiment binaries read, with one-line
/// help. Not every binary reads every key; unread keys are ignored.
const KNOWN_KEYS: &[(&str, &str)] = &[
    ("tasks", "comma-separated task list, or `all`"),
    ("task", "single benchmark task"),
    ("reps", "repetitions per configuration"),
    ("folds", "cross-validation folds"),
    ("epochs", "training epochs (0 = task's Table II value)"),
    ("counts", "comma-separated defect counts"),
    ("defects", "number of injected defects"),
    ("samples", "stimulus sample count"),
    ("trials", "trial count"),
    ("hidden", "hidden-layer size"),
    ("model", "fault model: transistor | gate"),
    ("seed", "master RNG seed"),
    (
        "threads",
        "worker threads for campaign grids (0 = all cores)",
    ),
    ("full", "true = paper-scale configuration"),
    ("serial", "exp_fig10: also time a --threads 1 reference run"),
    (
        "baseline",
        "exp_fig10: also time the uncached switch-level engine",
    ),
    (
        "lutpar",
        "exp_fig10: also time the partitioned lut + fused engines vs one-thread references",
    ),
    ("bench-out", "path for the machine-readable timing JSON"),
    (
        "breakdown",
        "exp_simspeed: report compile vs execute time and memo hit rates",
    ),
    (
        "net-rows",
        "exp_simspeed: rows for the network-level forward-pass shootout",
    ),
    (
        "net-defects",
        "exp_simspeed: defect counts for the network-level shootout",
    ),
    ("smoke", "exp_simspeed: reduced grid for CI smoke lanes"),
    (
        "checkpoint",
        "journal file for resumable campaigns (per-class suffix in exp_transient)",
    ),
    (
        "chaos",
        "exp_transient: inject engine panics, `defects:rep:attempts[,..]`",
    ),
    (
        "classes",
        "exp_transient: activation classes to run (default all three)",
    ),
    ("p", "exp_transient: transient per-evaluation probability"),
    (
        "period",
        "exp_transient: intermittent cycle length (evaluations)",
    ),
    (
        "duty",
        "exp_transient: active evaluations per intermittent cycle",
    ),
    (
        "budget-ms",
        "exp_recovery: wall-clock watchdog deadline per recovery rung",
    ),
    (
        "target-drop",
        "exp_recovery: accepted accuracy drop below the clean network",
    ),
    (
        "recovery-epochs",
        "exp_recovery: epoch budget per recovery rung",
    ),
    (
        "densities",
        "exp_memfault: comma-separated memory defect densities (faults per bit cell)",
    ),
    (
        "ecc",
        "exp_memfault: protect words with SEC-DED (default true)",
    ),
    ("spare-rows", "exp_memfault: spare rows for steering"),
    ("spare-cols", "exp_memfault: spare columns for steering"),
    (
        "rates",
        "exp_mission: comma-separated Poisson fault-arrival rates (events/batch)",
    ),
    ("windows", "exp_mission: reporting windows in the trace"),
    ("batches", "exp_mission: traffic batches per window"),
    ("rows", "exp_mission: dataset rows served per batch"),
    (
        "probe-interval",
        "exp_mission: batches between incremental BIST probes",
    ),
    (
        "probe-budget-ms",
        "exp_mission: wall-clock watchdog per probe",
    ),
    (
        "event-defects",
        "exp_mission: defects planted per arrival event",
    ),
    (
        "max-attempts",
        "exp_mission: failed recovery episodes tolerated before quarantine",
    ),
];

/// Parsed `--key value` command-line options.
#[derive(Clone, Debug, Default)]
pub struct Args {
    values: HashMap<String, String>,
}

impl Args {
    /// Parses `std::env::args()`.
    ///
    /// On `--help`/`-h`, a bare argument, or a dangling `--key` without
    /// a value, prints a usage summary listing the accepted keys and
    /// exits with status 0.
    pub fn parse() -> Args {
        match Args::try_parse(std::env::args().skip(1)) {
            Ok(args) => args,
            Err(HelpRequested(detail)) => {
                if let Some(detail) = detail {
                    println!("{detail}\n");
                }
                print_usage();
                std::process::exit(0);
            }
        }
    }

    /// Parses an explicit argument stream (without the program name).
    /// `Err` carries the message to print above the usage text, if any.
    fn try_parse<I: Iterator<Item = String>>(iter: I) -> Result<Args, HelpRequested> {
        let mut values = HashMap::new();
        let mut iter = iter.peekable();
        while let Some(arg) = iter.next() {
            if arg == "--help" || arg == "-h" {
                return Err(HelpRequested(None));
            }
            if let Some(key) = arg.strip_prefix("--") {
                match iter.next() {
                    Some(value) => {
                        values.insert(key.to_string(), value);
                    }
                    None => return Err(HelpRequested(Some(format!("--{key} needs a value")))),
                }
            } else {
                return Err(HelpRequested(Some(format!(
                    "unexpected argument `{arg}` (use --key value)"
                ))));
            }
        }
        Ok(Args { values })
    }

    /// Fetches a typed option or its default. A value that does not
    /// parse as `T` prints the error plus the usage summary and exits
    /// with status 2.
    pub fn get<T: FromStr>(&self, key: &str, default: T) -> T
    where
        T::Err: Display,
    {
        match self.values.get(key) {
            None => default,
            Some(v) => v
                .parse()
                .unwrap_or_else(|e| bad_value(&format!("--{key} {v}: {e}"))),
        }
    }

    /// Fetches a comma-separated list of `usize`, or the default.
    pub fn get_usize_list(&self, key: &str, default: &[usize]) -> Vec<usize> {
        match self.values.get(key) {
            None => default.to_vec(),
            Some(v) => v
                .split(',')
                .map(|s| {
                    s.trim()
                        .parse()
                        .unwrap_or_else(|e| bad_value(&format!("--{key} `{s}`: {e}")))
                })
                .collect(),
        }
    }

    /// Fetches a comma-separated list of `f64`, or the default.
    pub fn get_f64_list(&self, key: &str, default: &[f64]) -> Vec<f64> {
        match self.values.get(key) {
            None => default.to_vec(),
            Some(v) => v
                .split(',')
                .map(|s| {
                    s.trim()
                        .parse()
                        .unwrap_or_else(|e| bad_value(&format!("--{key} `{s}`: {e}")))
                })
                .collect(),
        }
    }

    /// Fetches a comma-separated list of strings, or the default.
    pub fn get_str_list(&self, key: &str, default: &[&str]) -> Vec<String> {
        match self.values.get(key) {
            None => default.iter().map(|s| s.to_string()).collect(),
            Some(v) => v.split(',').map(|s| s.trim().to_string()).collect(),
        }
    }

    /// Fetches a string option that has no default (e.g. an optional
    /// output path).
    pub fn get_opt_str(&self, key: &str) -> Option<&str> {
        self.values.get(key).map(String::as_str)
    }

    /// True if `--key true` (or any value other than `false`/`0`) was
    /// passed.
    pub fn get_bool(&self, key: &str, default: bool) -> bool {
        match self.values.get(key).map(String::as_str) {
            None => default,
            Some("false") | Some("0") => false,
            Some(_) => true,
        }
    }
}

/// Internal marker: the argument stream asked for (or forced) the usage
/// text. The payload is an optional explanation line.
struct HelpRequested(Option<String>);

fn print_usage() {
    println!("usage: exp_* [--key value]...\n");
    println!("accepted keys (unread keys are ignored by a given binary):");
    for (key, help) in KNOWN_KEYS {
        println!("  --{key:<12} {help}");
    }
}

/// Reports an unparseable option value and exits with status 2.
fn bad_value(msg: &str) -> ! {
    eprintln!("{msg}\n");
    print_usage();
    std::process::exit(2);
}

/// Looks up one task of the benchmark suite by name. An unknown name
/// prints the available tasks plus the usage summary and exits with
/// status 2 — a typo in `--task` is user error, not a crash.
pub fn require_task(name: &str) -> dta_datasets::TaskSpec {
    if let Some(spec) = dta_datasets::suite::specs()
        .into_iter()
        .find(|s| s.name == name)
    {
        return spec;
    }
    let names: Vec<&str> = dta_datasets::suite::specs()
        .iter()
        .map(|s| s.name)
        .collect();
    bad_value(&format!(
        "unknown task `{name}` (available: {})",
        names.join(", ")
    ))
}

/// A hand-rolled flat JSON object writer — enough to emit the
/// `BENCH_campaign.json` perf record without a serde dependency.
///
/// Keys appear in insertion order; numbers are rendered with
/// [`format_json_number`] (finite floats only — NaN/∞ become `null`).
#[derive(Clone, Debug, Default)]
pub struct JsonMap {
    entries: Vec<(String, String)>,
}

impl JsonMap {
    /// Creates an empty object.
    pub fn new() -> JsonMap {
        JsonMap::default()
    }

    fn push(&mut self, key: &str, rendered: String) {
        self.entries.push((key.to_string(), rendered));
    }

    /// Adds a string field.
    pub fn str(mut self, key: &str, value: &str) -> JsonMap {
        self.push(key, json_string(value));
        self
    }

    /// Adds an integer field.
    pub fn int(mut self, key: &str, value: u64) -> JsonMap {
        self.push(key, value.to_string());
        self
    }

    /// Adds a float field (`null` when non-finite).
    pub fn num(mut self, key: &str, value: f64) -> JsonMap {
        self.push(key, format_json_number(value));
        self
    }

    /// Adds an optional float field (`null` when absent or non-finite).
    pub fn opt_num(mut self, key: &str, value: Option<f64>) -> JsonMap {
        self.push(key, value.map_or_else(|| "null".into(), format_json_number));
        self
    }

    /// Adds a list-of-integers field.
    pub fn int_list(mut self, key: &str, values: &[usize]) -> JsonMap {
        let body: Vec<String> = values.iter().map(|v| v.to_string()).collect();
        self.push(key, format!("[{}]", body.join(", ")));
        self
    }

    /// Adds a list-of-floats field (non-finite values become `null`).
    pub fn num_list(mut self, key: &str, values: &[f64]) -> JsonMap {
        let body: Vec<String> = values.iter().copied().map(format_json_number).collect();
        self.push(key, format!("[{}]", body.join(", ")));
        self
    }

    /// Adds a list-of-strings field.
    pub fn str_list(mut self, key: &str, values: &[String]) -> JsonMap {
        let body: Vec<String> = values.iter().map(|v| json_string(v)).collect();
        self.push(key, format!("[{}]", body.join(", ")));
        self
    }

    /// Renders the object as pretty-printed JSON with a trailing newline.
    pub fn render(&self) -> String {
        let mut out = String::from("{\n");
        for (i, (key, value)) in self.entries.iter().enumerate() {
            let comma = if i + 1 == self.entries.len() { "" } else { "," };
            out.push_str(&format!("  {}: {value}{comma}\n", json_string(key)));
        }
        out.push_str("}\n");
        out
    }

    /// Writes the rendered object to `path`.
    pub fn write(&self, path: &str) -> std::io::Result<()> {
        std::fs::write(path, self.render())
    }
}

/// Renders a float as a JSON number: finite values via `{:?}` (shortest
/// round-trip form), non-finite as `null` (JSON has no NaN/∞).
pub fn format_json_number(value: f64) -> String {
    if value.is_finite() {
        format!("{value:?}")
    } else {
        "null".into()
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Prints a rule line matching a header width.
pub fn rule(width: usize) {
    println!("{}", "-".repeat(width));
}

/// Formats a fraction as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Total-variation distance between two histograms (after
/// normalization) — the divergence measure used to compare faulty-
/// operator output distributions against the error-free one in the
/// Figure 5 analysis.
pub fn total_variation(a: &[u64], b: &[u64]) -> f64 {
    assert_eq!(a.len(), b.len());
    let sa: u64 = a.iter().sum();
    let sb: u64 = b.iter().sum();
    assert!(sa > 0 && sb > 0, "histograms must be non-empty");
    0.5 * a
        .iter()
        .zip(b)
        .map(|(&x, &y)| (x as f64 / sa as f64 - y as f64 / sb as f64).abs())
        .sum::<f64>()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tv_distance_properties() {
        let a = [10u64, 0, 10];
        assert_eq!(total_variation(&a, &a), 0.0);
        let b = [0u64, 20, 0];
        assert_eq!(total_variation(&a, &b), 1.0);
        let c = [10u64, 10, 0];
        let d = total_variation(&a, &c);
        assert!(d > 0.0 && d < 1.0);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn tv_rejects_empty() {
        total_variation(&[0, 0], &[1, 1]);
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.1234), "12.3%");
    }

    fn argv(args: &[&str]) -> std::vec::IntoIter<String> {
        args.iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>()
            .into_iter()
    }

    #[test]
    fn try_parse_accepts_key_value_pairs() {
        let Ok(args) = Args::try_parse(argv(&["--reps", "7", "--tasks", "iris,wine"])) else {
            panic!("valid argument stream rejected");
        };
        assert_eq!(args.get("reps", 1usize), 7);
        assert_eq!(
            args.get_str_list("tasks", &[]),
            vec!["iris".to_string(), "wine".to_string()]
        );
    }

    #[test]
    fn try_parse_requests_help_instead_of_panicking() {
        assert!(Args::try_parse(argv(&["--help"])).is_err());
        assert!(Args::try_parse(argv(&["-h"])).is_err());
        assert!(Args::try_parse(argv(&["stray"])).is_err());
        let dangling = Args::try_parse(argv(&["--reps"]));
        let Err(HelpRequested(Some(detail))) = dangling else {
            panic!("dangling key must carry an explanation");
        };
        assert!(detail.contains("--reps"));
    }

    #[test]
    fn json_map_renders_all_field_kinds() {
        let json = JsonMap::new()
            .str("bin", "exp_fig10")
            .int("threads", 4)
            .num("wall_s", 1.5)
            .opt_num("speedup", None)
            .num("bad", f64::NAN)
            .int_list("counts", &[0, 3, 6])
            .str_list("tasks", &["iris".into(), "wi\"ne".into()])
            .render();
        assert!(json.starts_with("{\n"));
        assert!(json.ends_with("}\n"));
        assert!(json.contains("\"bin\": \"exp_fig10\""));
        assert!(json.contains("\"threads\": 4"));
        assert!(json.contains("\"wall_s\": 1.5"));
        assert!(json.contains("\"speedup\": null"));
        assert!(json.contains("\"bad\": null"));
        assert!(json.contains("\"counts\": [0, 3, 6]"));
        assert!(json.contains("\"tasks\": [\"iris\", \"wi\\\"ne\"]"));
        // No trailing comma before the closing brace.
        assert!(!json.contains(",\n}"));
    }

    #[test]
    fn args_defaults_without_cli() {
        let args = Args::default();
        assert_eq!(args.get("reps", 5usize), 5);
        assert_eq!(args.get_usize_list("counts", &[1, 2]), vec![1, 2]);
        assert_eq!(args.get_str_list("tasks", &["iris"]), vec!["iris"]);
        assert!(!args.get_bool("full", false));
    }
}
