#![warn(missing_docs)]

//! Shared plumbing for the experiment binaries: a tiny `--key value`
//! argument parser and table-printing helpers.
//!
//! Every experiment binary (`exp_*`) regenerates one table or figure of
//! the paper; run them with `cargo run --release -p dta-bench --bin
//! exp_<name> -- [--key value ...]`. All accept `--help`-ish defaults:
//! invoked bare, they run a reduced configuration that finishes in
//! seconds to a few minutes; flags scale them up to the paper's full
//! settings.

use std::collections::HashMap;
use std::fmt::Display;
use std::str::FromStr;

/// Parsed `--key value` command-line options.
#[derive(Clone, Debug, Default)]
pub struct Args {
    values: HashMap<String, String>,
}

impl Args {
    /// Parses `std::env::args()`.
    ///
    /// # Panics
    ///
    /// Panics on a dangling `--key` without a value.
    pub fn parse() -> Args {
        let mut values = HashMap::new();
        let mut iter = std::env::args().skip(1).peekable();
        while let Some(arg) = iter.next() {
            if let Some(key) = arg.strip_prefix("--") {
                let value = iter
                    .next()
                    .unwrap_or_else(|| panic!("--{key} needs a value"));
                values.insert(key.to_string(), value);
            } else {
                panic!("unexpected argument `{arg}` (use --key value)");
            }
        }
        Args { values }
    }

    /// Fetches a typed option or its default.
    ///
    /// # Panics
    ///
    /// Panics if the value does not parse as `T`.
    pub fn get<T: FromStr>(&self, key: &str, default: T) -> T
    where
        T::Err: Display,
    {
        match self.values.get(key) {
            None => default,
            Some(v) => v
                .parse()
                .unwrap_or_else(|e| panic!("--{key} {v}: {e}")),
        }
    }

    /// Fetches a comma-separated list of `usize`, or the default.
    pub fn get_usize_list(&self, key: &str, default: &[usize]) -> Vec<usize> {
        match self.values.get(key) {
            None => default.to_vec(),
            Some(v) => v
                .split(',')
                .map(|s| {
                    s.trim()
                        .parse()
                        .unwrap_or_else(|e| panic!("--{key} `{s}`: {e}"))
                })
                .collect(),
        }
    }

    /// Fetches a comma-separated list of strings, or the default.
    pub fn get_str_list(&self, key: &str, default: &[&str]) -> Vec<String> {
        match self.values.get(key) {
            None => default.iter().map(|s| s.to_string()).collect(),
            Some(v) => v.split(',').map(|s| s.trim().to_string()).collect(),
        }
    }

    /// True if `--key true` (or any value other than `false`/`0`) was
    /// passed.
    pub fn get_bool(&self, key: &str, default: bool) -> bool {
        match self.values.get(key).map(String::as_str) {
            None => default,
            Some("false") | Some("0") => false,
            Some(_) => true,
        }
    }
}

/// Prints a rule line matching a header width.
pub fn rule(width: usize) {
    println!("{}", "-".repeat(width));
}

/// Formats a fraction as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Total-variation distance between two histograms (after
/// normalization) — the divergence measure used to compare faulty-
/// operator output distributions against the error-free one in the
/// Figure 5 analysis.
pub fn total_variation(a: &[u64], b: &[u64]) -> f64 {
    assert_eq!(a.len(), b.len());
    let sa: u64 = a.iter().sum();
    let sb: u64 = b.iter().sum();
    assert!(sa > 0 && sb > 0, "histograms must be non-empty");
    0.5 * a
        .iter()
        .zip(b)
        .map(|(&x, &y)| (x as f64 / sa as f64 - y as f64 / sb as f64).abs())
        .sum::<f64>()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tv_distance_properties() {
        let a = [10u64, 0, 10];
        assert_eq!(total_variation(&a, &a), 0.0);
        let b = [0u64, 20, 0];
        assert_eq!(total_variation(&a, &b), 1.0);
        let c = [10u64, 10, 0];
        let d = total_variation(&a, &c);
        assert!(d > 0.0 && d < 1.0);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn tv_rejects_empty() {
        total_variation(&[0, 0], &[1, 1]);
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.1234), "12.3%");
    }

    #[test]
    fn args_defaults_without_cli() {
        let args = Args::default();
        assert_eq!(args.get("reps", 5usize), 5);
        assert_eq!(args.get_usize_list("counts", &[1, 2]), vec![1, 2]);
        assert_eq!(args.get_str_list("tasks", &["iris"]), vec!["iris"]);
        assert!(!args.get_bool("full", false));
    }
}
