//! The **blind-vs-pipeline twin-arm protocol** shared by the recovery
//! campaigns (`exp_recovery`, `exp_memfault`, `exp_systolic`).
//!
//! Every cell of those sweeps races twin copies of the same damaged,
//! commissioned accelerator through the recovery ladder: one *blind*
//! (retraining only — the paper's Figure 10 mechanism) and one with the
//! full pipeline (BIST diagnosis, then the topology's structural repair
//! rungs, then graceful degradation). Both arms share seeds and
//! budgets, so the pipeline arm can never end below the blind arm; the
//! campaigns assert that floor at every cell.
//!
//! This module holds the protocol once, generically over
//! [`Accel`](dta_core::accel::Accel), so a new topology gets the whole
//! campaign machinery — twin construction, state-clean diagnosis,
//! unified blind policy, fingerprint-guarded checkpoint journaling —
//! by implementing the trait.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use dta_ann::{Mlp, Topology};
use dta_core::accel::Accel;
use dta_core::recover::{recover, RecoveryReport};
use dta_core::{BistConfig, CellOutcome, Checkpoint, Diagnosis, RecoveryPolicy};
use dta_datasets::{Dataset, Fold, TaskSpec};

/// The four journal pseudo-tasks one twin cell fans out into.
pub const TWIN_ARMS: [&str; 4] = ["clean", "faulty", "blind", "full"];

/// One cell's journaled accuracies. Only quantities that fit the
/// checkpoint journal live here — anything else would differ between a
/// fresh run and a resumed one.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TwinCell {
    /// Accuracy of a pristine third copy of the commissioning run.
    pub clean: f64,
    /// Accuracy of the damaged array before any recovery.
    pub faulty: f64,
    /// Accuracy after blind retraining only.
    pub blind: f64,
    /// Accuracy after the full diagnosis-guided pipeline.
    pub recovered: f64,
}

/// Everything one twin race produces beyond the journaled accuracies —
/// campaigns that score diagnosis quality or report final rungs read
/// these; checkpoint-replayed cells don't have them.
pub struct TwinRace<A> {
    /// The journaled accuracies.
    pub cell: TwinCell,
    /// The BIST diagnosis the pipeline arm recovered under.
    pub diagnosis: Diagnosis,
    /// The blind arm's ladder report.
    pub blind_report: RecoveryReport,
    /// The pipeline arm's ladder report.
    pub full_report: RecoveryReport,
    /// The pipeline arm itself, post-recovery (fault truth, routing).
    pub full_accel: A,
}

/// Reports a fatal campaign error as `bin: what (label): e` and exits
/// with status 1.
pub fn die(bin: &str, label: &str, what: &str, e: &dyn std::fmt::Display) -> ! {
    eprintln!("{bin}: {what} ({label}): {e}");
    std::process::exit(1);
}

/// Commissions an accelerator of any topology: maps the task's network
/// and clean-trains it on the training fold. Exits with status 2 when
/// the network does not fit, 1 when training fails.
pub fn commission<A: Accel>(
    bin: &str,
    mut accel: A,
    spec: &TaskSpec,
    ds: &Dataset,
    train: &[usize],
    epochs: usize,
    seed: u64,
) -> A {
    let topo = Topology::new(ds.n_features(), spec.hidden, ds.n_classes());
    if let Err(e) = accel.map_network(Mlp::new(topo, seed)) {
        eprintln!("{bin}: task {} does not map: {e}", spec.name);
        std::process::exit(2);
    }
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    if let Err(e) = accel.retrain(ds, train, spec.learning_rate, 0.1, epochs, &mut rng) {
        eprintln!("{bin}: commissioning train failed: {e}");
        std::process::exit(1);
    }
    accel
}

/// Runs one cell of the twin-arm protocol.
///
/// `arm` builds one damaged, commissioned accelerator (called twice —
/// the twins must be bit-identical, so it must derive all randomness
/// from the cell seed); `pristine` builds the undamaged third copy the
/// clean reference is measured on. The pipeline arm is diagnosed with a
/// state-clean BIST (leaving it bit-identical to its twin), then both
/// arms recover: the blind arm under a unified blind policy (no remap,
/// no memory repair) against an empty diagnosis, the pipeline arm under
/// `policy_base` with `target_accuracy` set `target_drop` below the
/// measured clean accuracy and the cell seed installed.
#[allow(clippy::too_many_arguments)]
pub fn run_twin_race<A: Accel>(
    bin: &str,
    label: &str,
    mut arm: impl FnMut() -> A,
    pristine: impl FnOnce() -> A,
    ds: &Dataset,
    fold: &Fold,
    policy_base: &RecoveryPolicy,
    target_drop: f64,
    cell_seed: u64,
) -> TwinRace<A> {
    let fail = |what: &str, e: &dyn std::fmt::Display| -> ! { die(bin, label, what, e) };

    // Twin arrays with identical weights and identical damage: one for
    // the blind-retrain baseline, one for the full pipeline.
    let mut blind_accel = arm();
    let mut full_accel = arm();

    let clean = {
        // Measured before injection would be ideal, but the twin
        // construction makes it available on a third copy for free.
        let mut p = pristine();
        p.evaluate(ds, &fold.test)
            .unwrap_or_else(|e| fail("clean evaluation", &e))
    };
    let faulty = full_accel
        .evaluate(ds, &fold.test)
        .unwrap_or_else(|e| fail("faulty evaluation", &e));

    // Detect and diagnose (pipeline arm only — the BIST is state-clean,
    // so it leaves the arm bit-identical to its twin).
    let diagnosis = full_accel
        .self_test(&BistConfig::default())
        .unwrap_or_else(|e| fail("selftest", &e));

    let policy = RecoveryPolicy {
        target_accuracy: (clean - target_drop).max(0.0),
        seed: cell_seed,
        ..policy_base.clone()
    };
    let blind_policy = RecoveryPolicy {
        use_remap: false,
        use_memory_repair: false,
        ..policy.clone()
    };
    let blind_report = recover(
        &mut blind_accel,
        ds,
        &fold.train,
        &fold.test,
        &Diagnosis::default(),
        &blind_policy,
    )
    .unwrap_or_else(|e| fail("blind recovery", &e));
    let full_report = recover(
        &mut full_accel,
        ds,
        &fold.train,
        &fold.test,
        &diagnosis,
        &policy,
    )
    .unwrap_or_else(|e| fail("pipeline recovery", &e));

    TwinRace {
        cell: TwinCell {
            clean,
            faulty,
            blind: blind_report.accuracy,
            recovered: full_report.accuracy,
        },
        diagnosis,
        blind_report,
        full_report,
        full_accel,
    }
}

/// Asserts the shared-seed floor over a batch of cells: the pipeline
/// arm can never end below the blind arm.
pub fn assert_twin_floor(cells: &[TwinCell], label: &str) {
    for cell in cells {
        assert!(
            cell.recovered >= cell.blind,
            "pipeline arm below blind arm at {label} — shared-seed invariant broken"
        );
    }
}

/// Opens (or resumes) a fingerprint-guarded checkpoint journal,
/// reporting how many arms were already journaled. A fingerprint
/// mismatch exits with status 1.
pub fn open_checkpoint(bin: &str, path: &str, fingerprint: &str) -> Checkpoint {
    match Checkpoint::open(path, fingerprint) {
        Ok(ck) => {
            if ck.completed() > 0 {
                eprintln!(
                    "{bin}: resuming from {} ({} journaled arm(s))",
                    ck.path().display(),
                    ck.completed()
                );
            }
            ck
        }
        Err(e) => {
            eprintln!("{bin}: {e}");
            std::process::exit(1);
        }
    }
}

/// Replays a journaled cell under pseudo-task key `key` (e.g. the task
/// name, or `task@topology`), if all four of its arms were recorded.
pub fn replay_twin(ck: &Checkpoint, key: &str, idx: usize, rep: usize) -> Option<TwinCell> {
    let acc = |arm: &str| match ck.lookup(&format!("{key}#{arm}"), idx, rep) {
        Some(CellOutcome::Completed { accuracy, .. }) => Some(accuracy),
        _ => None,
    };
    Some(TwinCell {
        clean: acc(TWIN_ARMS[0])?,
        faulty: acc(TWIN_ARMS[1])?,
        blind: acc(TWIN_ARMS[2])?,
        recovered: acc(TWIN_ARMS[3])?,
    })
}

/// Journals a finished cell's four arms under pseudo-task key `key`.
/// A write failure exits with status 1.
pub fn record_twin(bin: &str, ck: &Checkpoint, key: &str, idx: usize, rep: usize, cell: &TwinCell) {
    let values = [cell.clean, cell.faulty, cell.blind, cell.recovered];
    for (arm, accuracy) in TWIN_ARMS.iter().zip(values) {
        let outcome = CellOutcome::Completed {
            accuracy,
            retried: false,
        };
        if let Err(e) = ck.record(&format!("{key}#{arm}"), idx, rep, &outcome) {
            eprintln!("{bin}: checkpoint write failed: {e}");
            std::process::exit(1);
        }
    }
}

/// Mean of a slice, `NaN` when empty (printed as `-` by the tables).
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        f64::NAN
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_of_empty_is_nan() {
        assert!(mean(&[]).is_nan());
        assert_eq!(mean(&[0.25, 0.75]), 0.5);
    }

    #[test]
    fn twin_journal_round_trips() {
        let dir = std::env::temp_dir().join(format!("dta-twin-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("journal.jsonl");
        let ck = Checkpoint::open(&path, "twin test v1").unwrap();
        let cell = TwinCell {
            clean: 0.95,
            faulty: 0.4,
            blind: 0.8,
            recovered: 0.9,
        };
        assert!(replay_twin(&ck, "iris@systolic", 1, 0).is_none());
        record_twin("test", &ck, "iris@systolic", 1, 0, &cell);
        let ck = Checkpoint::open(&path, "twin test v1").unwrap();
        assert_eq!(replay_twin(&ck, "iris@systolic", 1, 0), Some(cell));
        // A different key or index misses.
        assert!(replay_twin(&ck, "iris@spatial", 1, 0).is_none());
        assert!(replay_twin(&ck, "iris@systolic", 2, 0).is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    #[should_panic(expected = "shared-seed invariant")]
    fn floor_assert_fires() {
        assert_twin_floor(
            &[TwinCell {
                clean: 1.0,
                faulty: 0.5,
                blind: 0.9,
                recovered: 0.8,
            }],
            "defects=3",
        );
    }
}
