//! Netlist evaluation engine.

use std::sync::Arc;

use crate::gate::{GateBehavior, GateKind};
use crate::netlist::{Netlist, Node, NodeId};

/// Largest cell arity in the standard-cell library (AOI22/OAI22).
pub(crate) const MAX_ARITY: usize = 4;

/// Evaluates a healthy cell reading its pins straight out of the value
/// array — the hot inner statement of [`Simulator::settle`]. Keeping the
/// reads here (instead of copying pins into a scratch buffer and calling
/// [`GateKind::eval`]) saves a copy and an arity assert per gate.
#[inline(always)]
fn eval_pins(kind: GateKind, values: &[bool], pins: &[u32]) -> bool {
    let v = |k: usize| values[pins[k] as usize];
    match kind {
        GateKind::Const(b) => b,
        GateKind::Buf => v(0),
        GateKind::Not => !v(0),
        GateKind::And2 => v(0) & v(1),
        GateKind::Or2 => v(0) | v(1),
        GateKind::Nand2 => !(v(0) & v(1)),
        GateKind::Nor2 => !(v(0) | v(1)),
        GateKind::Nand3 => !(v(0) & v(1) & v(2)),
        GateKind::Nor3 => !(v(0) | v(1) | v(2)),
        GateKind::Xor2 => v(0) ^ v(1),
        GateKind::Xnor2 => !(v(0) ^ v(1)),
        GateKind::Aoi22 => !((v(0) & v(1)) | (v(2) & v(3))),
        GateKind::Oai22 => !((v(0) | v(1)) & (v(2) | v(3))),
        GateKind::Mux2 => {
            if v(0) {
                v(2)
            } else {
                v(1)
            }
        }
    }
}

/// Evaluates a [`Netlist`]: settles combinational logic, steps latches,
/// and applies per-gate behavioral overrides (the fault-injection hook).
///
/// Typical cycle:
///
/// 1. [`Simulator::set_input`] for each primary input;
/// 2. [`Simulator::settle`] to propagate through the combinational logic;
/// 3. read outputs with [`Simulator::value`] / [`Simulator::output`];
/// 4. optionally [`Simulator::tick`] to capture latch data inputs.
///
/// # Example
///
/// ```
/// use dta_logic::{GateKind, NetlistBuilder, Simulator};
/// let mut b = NetlistBuilder::new();
/// let a = b.input("a");
/// let q = b.gate(GateKind::Not, &[a]);
/// b.output("q", q);
/// let net = std::sync::Arc::new(b.build());
/// let mut sim = Simulator::new(net);
/// sim.set_input(a, false);
/// sim.settle();
/// assert!(sim.output("q").unwrap());
/// ```
#[derive(Debug)]
pub struct Simulator {
    net: Arc<Netlist>,
    values: Vec<bool>,
    /// Dense per-node override slots (indexed by node index): the settle
    /// loop runs once per gate per evaluation, so the lookup must be an
    /// array index, not a hash.
    overrides: Vec<Option<Box<dyn GateBehavior>>>,
    n_overrides: usize,
}

impl Simulator {
    /// Creates a simulator with all inputs low and latches at their init
    /// values. The netlist is shared via [`Arc`], so several simulators
    /// (e.g. a healthy and a defective instance) can run the same circuit.
    pub fn new(net: Arc<Netlist>) -> Simulator {
        let mut values = vec![false; net.len()];
        for &l in net.latches() {
            if let Node::Latch { init, .. } = net.node(l) {
                values[l.index()] = *init;
            }
        }
        let overrides = std::iter::repeat_with(|| None).take(values.len()).collect();
        Simulator {
            net,
            values,
            overrides,
            n_overrides: 0,
        }
    }

    /// The netlist being simulated.
    pub fn netlist(&self) -> &Netlist {
        &self.net
    }

    /// Drives a primary input.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not an input node.
    pub fn set_input(&mut self, id: NodeId, value: bool) {
        assert!(
            matches!(self.net.node(id), Node::Input { .. }),
            "{id} is not a primary input"
        );
        self.values[id.index()] = value;
    }

    /// Drives a bus of inputs from the low bits of `word`, LSB first.
    pub fn set_input_word(&mut self, bus: &[NodeId], word: u64) {
        for (i, &id) in bus.iter().enumerate() {
            self.set_input(id, (word >> i) & 1 == 1);
        }
    }

    /// Settles the combinational logic in topological order.
    pub fn settle(&mut self) {
        // Clone the Arc (cheap) so the netlist borrow does not conflict
        // with mutating values/overrides.
        let net = Arc::clone(&self.net);
        let (sched, pins) = net.schedule();
        let values = &mut self.values;
        if self.n_overrides == 0 {
            // Healthy fast path: no override slot checks at all.
            for g in sched {
                let p = &pins[g.in_start as usize..][..g.in_len as usize];
                values[g.out as usize] = eval_pins(g.kind, values, p);
            }
            return;
        }
        let overrides = &mut self.overrides;
        for g in sched {
            let p = &pins[g.in_start as usize..][..g.in_len as usize];
            let v = match overrides[g.out as usize].as_mut() {
                Some(behavior) => {
                    let mut buf = [false; MAX_ARITY];
                    for (k, &i) in p.iter().enumerate() {
                        buf[k] = values[i as usize];
                    }
                    behavior.eval(&buf[..p.len()])
                }
                None => eval_pins(g.kind, values, p),
            };
            values[g.out as usize] = v;
        }
    }

    /// Captures each latch's data input into its stored value. Call after
    /// [`Simulator::settle`].
    pub fn tick(&mut self) {
        let net = Arc::clone(&self.net);
        for &l in net.latches() {
            if let Node::Latch { data, .. } = net.node(l) {
                self.values[l.index()] = self.values[data.index()];
            }
        }
    }

    /// Reads the settled value of any node.
    pub fn value(&self, id: NodeId) -> bool {
        self.values[id.index()]
    }

    /// Reads a named output, if it exists.
    pub fn output(&self, name: &str) -> Option<bool> {
        self.net.output(name).map(|id| self.value(id))
    }

    /// Packs a bus of node values into the low bits of a `u64`, LSB first.
    pub fn read_word(&self, bus: &[NodeId]) -> u64 {
        bus.iter()
            .enumerate()
            .fold(0u64, |acc, (i, &id)| acc | (u64::from(self.value(id)) << i))
    }

    /// Replaces a gate's function with a behavioral model (fault
    /// injection). Returns the previous override, if any.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a gate node.
    pub fn override_gate(
        &mut self,
        id: NodeId,
        behavior: Box<dyn GateBehavior>,
    ) -> Option<Box<dyn GateBehavior>> {
        assert!(
            matches!(self.net.node(id), Node::Gate { .. }),
            "{id} is not a gate"
        );
        let prev = self.overrides[id.index()].replace(behavior);
        if prev.is_none() {
            self.n_overrides += 1;
        }
        prev
    }

    /// Removes a gate override, restoring the healthy cell function.
    pub fn clear_override(&mut self, id: NodeId) -> Option<Box<dyn GateBehavior>> {
        let prev = self.overrides[id.index()].take();
        if prev.is_some() {
            self.n_overrides -= 1;
        }
        prev
    }

    /// Number of gates currently overridden.
    pub fn override_count(&self) -> usize {
        self.n_overrides
    }

    /// Resets latches to their init values and clears the internal state
    /// of every override (memory effects, delay pipelines). Driven input
    /// values are preserved.
    pub fn reset_state(&mut self) {
        let net = Arc::clone(&self.net);
        for &l in net.latches() {
            if let Node::Latch { init, .. } = net.node(l) {
                self.values[l.index()] = *init;
            }
        }
        for behavior in self.overrides.iter_mut().flatten() {
            behavior.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::GateKind;
    use crate::netlist::NetlistBuilder;

    fn full_adder() -> (std::sync::Arc<Netlist>, [NodeId; 3], [NodeId; 2]) {
        let mut b = NetlistBuilder::new();
        let a = b.input("a");
        let x = b.input("b");
        let cin = b.input("cin");
        let axb = b.gate(GateKind::Xor2, &[a, x]);
        let sum = b.gate(GateKind::Xor2, &[axb, cin]);
        let t1 = b.gate(GateKind::And2, &[axb, cin]);
        let t2 = b.gate(GateKind::And2, &[a, x]);
        let cout = b.gate(GateKind::Or2, &[t1, t2]);
        b.output("sum", sum);
        b.output("cout", cout);
        (std::sync::Arc::new(b.build()), [a, x, cin], [sum, cout])
    }

    #[test]
    fn full_adder_truth_table() {
        let (net, ins, outs) = full_adder();
        let mut sim = Simulator::new(net.clone());
        for bits in 0u8..8 {
            let (a, b_, c) = (bits & 1 != 0, bits & 2 != 0, bits & 4 != 0);
            sim.set_input(ins[0], a);
            sim.set_input(ins[1], b_);
            sim.set_input(ins[2], c);
            sim.settle();
            let total = u8::from(a) + u8::from(b_) + u8::from(c);
            assert_eq!(sim.value(outs[0]), total & 1 == 1, "sum at {bits:03b}");
            assert_eq!(sim.value(outs[1]), total >= 2, "cout at {bits:03b}");
        }
    }

    #[test]
    fn word_helpers_roundtrip() {
        let mut b = NetlistBuilder::new();
        let bus = b.input_bus("x", 8);
        let inverted: Vec<_> = bus.iter().map(|&n| b.gate(GateKind::Not, &[n])).collect();
        b.output_bus("y", &inverted);
        let net = std::sync::Arc::new(b.build());
        let mut sim = Simulator::new(net.clone());
        sim.set_input_word(&bus, 0b1010_0110);
        sim.settle();
        assert_eq!(sim.read_word(&bus), 0b1010_0110);
        assert_eq!(sim.read_word(&inverted) as u8, !0b1010_0110u8);
    }

    #[test]
    fn latch_toggles_through_inverter() {
        let mut b = NetlistBuilder::new();
        let l = NodeId(1);
        let inv = b.gate(GateKind::Not, &[l]);
        let l_real = b.latch(inv, false);
        assert_eq!(l_real, l);
        b.output("q", l_real);
        let net = std::sync::Arc::new(b.build());
        let mut sim = Simulator::new(net.clone());
        let mut seen = Vec::new();
        for _ in 0..4 {
            sim.settle();
            seen.push(sim.output("q").unwrap());
            sim.tick();
        }
        assert_eq!(seen, vec![false, true, false, true]);
    }

    #[test]
    fn reset_restores_latch_init() {
        let mut b = NetlistBuilder::new();
        let d = b.input("d");
        let q = b.latch(d, true);
        b.output("q", q);
        let net = std::sync::Arc::new(b.build());
        let mut sim = Simulator::new(net.clone());
        assert!(sim.output("q").unwrap(), "init value");
        sim.set_input(d, false);
        sim.settle();
        sim.tick();
        assert!(!sim.output("q").unwrap());
        sim.reset_state();
        assert!(sim.output("q").unwrap(), "back to init");
    }

    #[derive(Debug)]
    struct AlwaysHigh;
    impl GateBehavior for AlwaysHigh {
        fn eval(&mut self, _inputs: &[bool]) -> bool {
            true
        }
    }

    #[test]
    fn override_replaces_gate_function() {
        let mut b = NetlistBuilder::new();
        let a = b.input("a");
        let g = b.gate(GateKind::Not, &[a]);
        b.output("y", g);
        let net = std::sync::Arc::new(b.build());
        let mut sim = Simulator::new(net.clone());
        sim.set_input(a, true);
        sim.settle();
        assert!(!sim.output("y").unwrap());

        sim.override_gate(g, Box::new(AlwaysHigh));
        assert_eq!(sim.override_count(), 1);
        sim.settle();
        assert!(sim.output("y").unwrap(), "faulty gate forces 1");

        sim.clear_override(g);
        sim.settle();
        assert!(!sim.output("y").unwrap(), "healthy again");
    }

    #[test]
    #[should_panic(expected = "not a primary input")]
    fn driving_gate_panics() {
        let mut b = NetlistBuilder::new();
        let a = b.input("a");
        let g = b.gate(GateKind::Not, &[a]);
        b.output("y", g);
        let net = std::sync::Arc::new(b.build());
        let mut sim = Simulator::new(net.clone());
        sim.set_input(g, true);
    }

    #[test]
    #[should_panic(expected = "not a gate")]
    fn overriding_input_panics() {
        let (net, ins, _) = full_adder();
        let mut sim = Simulator::new(net.clone());
        sim.override_gate(ins[0], Box::new(AlwaysHigh));
    }
}
