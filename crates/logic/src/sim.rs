//! Netlist evaluation engine.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use crate::gate::{GateBehavior, GateKind};
use crate::netlist::{ConeClosure, Netlist, Node, NodeId};
use crate::sim64::{eval_kind64, Simulator64};

/// Benchmark hook: when set, every subsequently constructed [`Simulator`]
/// and [`Simulator64`] starts in [`SettleMode::Full`] — the PR-1 compiled
/// sweep — instead of the event-driven default. Results are bit-identical
/// either way; only the speed differs. Sampled at construction time so
/// the per-settle cost stays zero.
static FORCE_FULL_SETTLE: AtomicBool = AtomicBool::new(false);

/// Forces (or releases) the compiled full-sweep settle for every
/// simulator constructed afterwards in this process. Only meant for
/// benchmarks and differential tests that measure or cross-check the
/// event-driven path against the full sweep.
pub fn force_full_settle(on: bool) {
    FORCE_FULL_SETTLE.store(on, Ordering::SeqCst);
}

/// True while [`force_full_settle`] is in effect.
pub fn full_settle_forced() -> bool {
    FORCE_FULL_SETTLE.load(Ordering::SeqCst)
}

/// How [`Simulator::settle`] (and [`Simulator64::settle`]) propagates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SettleMode {
    /// One compiled sweep over every gate in topological order — the
    /// fallback engine and the differential-testing oracle.
    Full,
    /// Event-driven: only gates whose inputs changed since the previous
    /// settle are re-evaluated, propagated in topological order until
    /// quiescent. Overridden (faulty) gates are re-evaluated every
    /// settle regardless, because stateful behaviors (memory effects,
    /// activation streams) advance once per evaluation and can change
    /// output with unchanged inputs. Bit-identical to [`SettleMode::Full`].
    Event,
}

/// Precomputed cone-of-influence pruning state for a faulty simulator:
/// the union fan-out cone of the overridden gates, plus a dense scratch
/// value array so cone-only evaluation never touches the simulator's own
/// node values. Cone scratch values are 64-lane words: healthy cone
/// gates evaluate word-parallel, only the overridden gates themselves
/// drop to per-lane evaluation (in lane order, so stateful behaviors see
/// the exact scalar sequence).
#[derive(Debug)]
struct ConePlan {
    /// The shared, memoized closure (schedule, membership, slots,
    /// in-cone latches) — see [`Netlist::cone_closure`].
    closure: Arc<ConeClosure>,
    /// 64-lane scratch values for the cone nodes.
    values: Vec<u64>,
}

/// Largest cell arity in the standard-cell library (AOI22/OAI22).
pub(crate) const MAX_ARITY: usize = 4;

/// Evaluates a healthy cell reading its pins straight out of the value
/// array — the hot inner statement of [`Simulator::settle`]. Keeping the
/// reads here (instead of copying pins into a scratch buffer and calling
/// [`GateKind::eval`]) saves a copy and an arity assert per gate.
#[inline(always)]
fn eval_pins(kind: GateKind, values: &[bool], pins: &[u32]) -> bool {
    let v = |k: usize| values[pins[k] as usize];
    match kind {
        GateKind::Const(b) => b,
        GateKind::Buf => v(0),
        GateKind::Not => !v(0),
        GateKind::And2 => v(0) & v(1),
        GateKind::Or2 => v(0) | v(1),
        GateKind::Nand2 => !(v(0) & v(1)),
        GateKind::Nor2 => !(v(0) | v(1)),
        GateKind::Nand3 => !(v(0) & v(1) & v(2)),
        GateKind::Nor3 => !(v(0) | v(1) | v(2)),
        GateKind::Xor2 => v(0) ^ v(1),
        GateKind::Xnor2 => !(v(0) ^ v(1)),
        GateKind::Aoi22 => !((v(0) & v(1)) | (v(2) & v(3))),
        GateKind::Oai22 => !((v(0) | v(1)) & (v(2) | v(3))),
        GateKind::Mux2 => {
            if v(0) {
                v(2)
            } else {
                v(1)
            }
        }
    }
}

/// Evaluates a [`Netlist`]: settles combinational logic, steps latches,
/// and applies per-gate behavioral overrides (the fault-injection hook).
///
/// Typical cycle:
///
/// 1. [`Simulator::set_input`] for each primary input;
/// 2. [`Simulator::settle`] to propagate through the combinational logic;
/// 3. read outputs with [`Simulator::value`] / [`Simulator::output`];
/// 4. optionally [`Simulator::tick`] to capture latch data inputs.
///
/// # Example
///
/// ```
/// use dta_logic::{GateKind, NetlistBuilder, Simulator};
/// let mut b = NetlistBuilder::new();
/// let a = b.input("a");
/// let q = b.gate(GateKind::Not, &[a]);
/// b.output("q", q);
/// let net = std::sync::Arc::new(b.build());
/// let mut sim = Simulator::new(net);
/// sim.set_input(a, false);
/// sim.settle();
/// assert!(sim.output("q").unwrap());
/// ```
#[derive(Debug)]
pub struct Simulator {
    net: Arc<Netlist>,
    values: Vec<bool>,
    /// Dense per-node override slots (indexed by node index): the settle
    /// loop runs once per gate per evaluation, so the lookup must be an
    /// array index, not a hash.
    overrides: Vec<Option<Box<dyn GateBehavior>>>,
    n_overrides: usize,
    mode: SettleMode,
    /// Per-schedule-position dirty flags (event-driven bookkeeping).
    dirty: Vec<bool>,
    /// Bounds of the dirty schedule positions: the event-driven settle
    /// sweeps `[dirty_lo, dirty_hi]` linearly, skipping clean gates.
    /// Empty when `dirty_lo > dirty_hi` (the reset state is
    /// `u32::MAX`/`0`, which min/max folds keep consistent).
    dirty_lo: u32,
    dirty_hi: u32,
    /// Number of currently dirty schedule positions. When a meaningful
    /// share of the schedule is already dirty before a settle, the
    /// propagated cone usually covers most of the circuit and
    /// event-driven propagation would only add bookkeeping on top of
    /// near-full work, so the settle adaptively drops to the compiled
    /// sweep.
    n_dirty: u32,
    /// When set, the next settle re-evaluates every gate (initial state,
    /// or values were bypassed by a cone batch).
    all_dirty: bool,
    /// Schedule positions of the overridden gates, ascending.
    override_sched: Vec<u32>,
    cone: Option<ConePlan>,
}

impl Simulator {
    /// Creates a simulator with all inputs low and latches at their init
    /// values. The netlist is shared via [`Arc`], so several simulators
    /// (e.g. a healthy and a defective instance) can run the same circuit.
    pub fn new(net: Arc<Netlist>) -> Simulator {
        let mut values = vec![false; net.len()];
        for &l in net.latches() {
            if let Node::Latch { init, .. } = net.node(l) {
                values[l.index()] = *init;
            }
        }
        let overrides = std::iter::repeat_with(|| None).take(values.len()).collect();
        let n_sched = net.schedule().0.len();
        let mode = if full_settle_forced() {
            SettleMode::Full
        } else {
            SettleMode::Event
        };
        Simulator {
            net,
            values,
            overrides,
            n_overrides: 0,
            mode,
            dirty: vec![false; n_sched],
            dirty_lo: u32::MAX,
            dirty_hi: 0,
            n_dirty: 0,
            all_dirty: true,
            override_sched: Vec::new(),
            cone: None,
        }
    }

    /// The active settle strategy.
    pub fn settle_mode(&self) -> SettleMode {
        self.mode
    }

    /// Switches the settle strategy. Entering [`SettleMode::Event`]
    /// schedules one full re-evaluation so the incremental bookkeeping
    /// starts from a settled state.
    pub fn set_settle_mode(&mut self, mode: SettleMode) {
        if mode == SettleMode::Event && self.mode != SettleMode::Event {
            self.all_dirty = true;
        }
        self.mode = mode;
    }

    /// Marks the consumers of `node` dirty.
    fn mark_fanout(&mut self, node: u32) {
        for &pos in self.net.fanout_of(node) {
            if !self.dirty[pos as usize] {
                self.dirty[pos as usize] = true;
                self.dirty_lo = self.dirty_lo.min(pos);
                self.dirty_hi = self.dirty_hi.max(pos);
                self.n_dirty += 1;
            }
        }
    }

    /// Marks one schedule position dirty.
    fn mark_pos(&mut self, pos: u32) {
        if !self.dirty[pos as usize] {
            self.dirty[pos as usize] = true;
            self.dirty_lo = self.dirty_lo.min(pos);
            self.dirty_hi = self.dirty_hi.max(pos);
            self.n_dirty += 1;
        }
    }

    /// True when a node-value change must be tracked for the next
    /// event-driven settle.
    fn tracking_changes(&self) -> bool {
        self.mode == SettleMode::Event && !self.all_dirty
    }

    /// The netlist being simulated.
    pub fn netlist(&self) -> &Netlist {
        &self.net
    }

    /// Drives a primary input.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not an input node.
    pub fn set_input(&mut self, id: NodeId, value: bool) {
        assert!(
            matches!(self.net.node(id), Node::Input { .. }),
            "{id} is not a primary input"
        );
        if self.values[id.index()] == value {
            return;
        }
        self.values[id.index()] = value;
        if self.tracking_changes() {
            self.mark_fanout(id.0);
        }
    }

    /// Drives a bus of inputs from the low bits of `word`, LSB first.
    pub fn set_input_word(&mut self, bus: &[NodeId], word: u64) {
        for (i, &id) in bus.iter().enumerate() {
            self.set_input(id, (word >> i) & 1 == 1);
        }
    }

    /// Settles the combinational logic — event-driven by default,
    /// compiled full sweep in [`SettleMode::Full`]. Both strategies are
    /// bit-identical.
    pub fn settle(&mut self) {
        match self.mode {
            SettleMode::Full => self.settle_full(),
            SettleMode::Event => self.settle_event(),
        }
    }

    /// Settles with one compiled sweep over every gate in topological
    /// order, regardless of the active mode — the fallback engine and the
    /// oracle the event-driven path is differentially tested against.
    pub fn settle_full(&mut self) {
        // Clone the Arc (cheap) so the netlist borrow does not conflict
        // with mutating values/overrides.
        let net = Arc::clone(&self.net);
        let (sched, pins) = net.schedule();
        let values = &mut self.values;
        if self.n_overrides == 0 {
            // Healthy fast path: no override slot checks at all.
            for g in sched {
                let p = &pins[g.in_start as usize..][..g.in_len as usize];
                values[g.out as usize] = eval_pins(g.kind, values, p);
            }
        } else {
            let overrides = &mut self.overrides;
            for g in sched {
                let p = &pins[g.in_start as usize..][..g.in_len as usize];
                let v = match overrides[g.out as usize].as_mut() {
                    Some(behavior) => {
                        let mut buf = [false; MAX_ARITY];
                        for (k, &i) in p.iter().enumerate() {
                            buf[k] = values[i as usize];
                        }
                        behavior.eval(&buf[..p.len()])
                    }
                    None => eval_pins(g.kind, values, p),
                };
                values[g.out as usize] = v;
            }
        }
        // A full sweep leaves everything settled: drop any pending
        // incremental work so the two paths stay interchangeable.
        self.all_dirty = false;
        if self.dirty_lo <= self.dirty_hi {
            for pos in self.dirty_lo..=self.dirty_hi {
                self.dirty[pos as usize] = false;
            }
        }
        self.dirty_lo = u32::MAX;
        self.dirty_hi = 0;
        self.n_dirty = 0;
    }

    /// Event-driven settle: sweeps the dirty range of the schedule in
    /// topological order, re-evaluating only gates whose inputs changed
    /// since the previous settle and propagating output changes to their
    /// fan-out until quiescent. (All fan-out positions are greater than
    /// the producing gate's, so one forward sweep with a growing upper
    /// bound reaches quiescence — no priority queue needed.)
    ///
    /// When more than ~1/64 of the schedule is already dirty before
    /// propagation, drops to [`Simulator::settle_full`]: seeded dirt
    /// fans out hard in arithmetic circuits (one multiplier input bit
    /// reaches most of the array), so dense input changes end up doing
    /// near-full work and the compiled sweep does it without the
    /// change-tracking overhead. Bit-identical either way.
    fn settle_event(&mut self) {
        if self.all_dirty || self.n_dirty as usize * 64 >= self.dirty.len() {
            return self.settle_full();
        }
        let net = Arc::clone(&self.net);
        let (sched, pins) = net.schedule();
        let mut lo = self.dirty_lo;
        let mut hi = self.dirty_hi;
        // Overridden gates re-evaluate every settle: stateful behaviors
        // advance their memory/activation state once per evaluation and
        // can change output with unchanged inputs. Widen the sweep to
        // include them.
        let ov = &self.override_sched;
        if let (Some(&first), Some(&last)) = (ov.first(), ov.last()) {
            lo = lo.min(first);
            hi = hi.max(last);
        }
        let values = &mut self.values;
        let overrides = &mut self.overrides;
        let dirty = &mut self.dirty;
        let mut next_ov = 0usize;
        let mut pos = lo;
        while pos <= hi {
            let forced = next_ov < ov.len() && ov[next_ov] == pos;
            if forced {
                next_ov += 1;
            }
            if !dirty[pos as usize] && !forced {
                pos += 1;
                continue;
            }
            dirty[pos as usize] = false;
            let g = &sched[pos as usize];
            let p = &pins[g.in_start as usize..][..g.in_len as usize];
            let v = match overrides[g.out as usize].as_mut() {
                Some(behavior) => {
                    let mut buf = [false; MAX_ARITY];
                    for (k, &i) in p.iter().enumerate() {
                        buf[k] = values[i as usize];
                    }
                    behavior.eval(&buf[..p.len()])
                }
                None => eval_pins(g.kind, values, p),
            };
            if v != values[g.out as usize] {
                values[g.out as usize] = v;
                for &t in net.fanout_of(g.out) {
                    if !dirty[t as usize] {
                        dirty[t as usize] = true;
                        hi = hi.max(t);
                    }
                }
            }
            pos += 1;
        }
        self.dirty_lo = u32::MAX;
        self.dirty_hi = 0;
        self.n_dirty = 0;
    }

    /// Captures each latch's data input into its stored value. Call after
    /// [`Simulator::settle`].
    pub fn tick(&mut self) {
        let net = Arc::clone(&self.net);
        for &l in net.latches() {
            if let Node::Latch { data, .. } = net.node(l) {
                let v = self.values[data.index()];
                if self.values[l.index()] != v {
                    self.values[l.index()] = v;
                    if self.tracking_changes() {
                        self.mark_fanout(l.0);
                    }
                }
            }
        }
    }

    /// Reads the settled value of any node.
    pub fn value(&self, id: NodeId) -> bool {
        self.values[id.index()]
    }

    /// Reads a named output, if it exists.
    pub fn output(&self, name: &str) -> Option<bool> {
        self.net.output(name).map(|id| self.value(id))
    }

    /// Packs a bus of node values into the low bits of a `u64`, LSB first.
    pub fn read_word(&self, bus: &[NodeId]) -> u64 {
        bus.iter()
            .enumerate()
            .fold(0u64, |acc, (i, &id)| acc | (u64::from(self.value(id)) << i))
    }

    /// Replaces a gate's function with a behavioral model (fault
    /// injection). Returns the previous override, if any.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a gate node.
    pub fn override_gate(
        &mut self,
        id: NodeId,
        behavior: Box<dyn GateBehavior>,
    ) -> Option<Box<dyn GateBehavior>> {
        assert!(
            matches!(self.net.node(id), Node::Gate { .. }),
            "{id} is not a gate"
        );
        let prev = self.overrides[id.index()].replace(behavior);
        let pos = self.net.sched_index(id.0);
        if prev.is_none() {
            self.n_overrides += 1;
            let at = self.override_sched.partition_point(|&p| p < pos);
            self.override_sched.insert(at, pos);
        }
        self.cone = None;
        if self.tracking_changes() {
            self.mark_pos(pos);
        }
        prev
    }

    /// Removes a gate override, restoring the healthy cell function.
    pub fn clear_override(&mut self, id: NodeId) -> Option<Box<dyn GateBehavior>> {
        let prev = self.overrides[id.index()].take();
        if prev.is_some() {
            self.n_overrides -= 1;
            let pos = self.net.sched_index(id.0);
            self.override_sched.retain(|&p| p != pos);
            self.cone = None;
            // The gate's function changed back: re-evaluate it once.
            if self.tracking_changes() {
                self.mark_pos(pos);
            }
        }
        prev
    }

    /// Number of gates currently overridden.
    pub fn override_count(&self) -> usize {
        self.n_overrides
    }

    /// Resets latches to their init values and clears the internal state
    /// of every override (memory effects, delay pipelines). Driven input
    /// values are preserved.
    pub fn reset_state(&mut self) {
        let net = Arc::clone(&self.net);
        for &l in net.latches() {
            if let Node::Latch { init, .. } = net.node(l) {
                if self.values[l.index()] != *init {
                    self.values[l.index()] = *init;
                    if self.tracking_changes() {
                        self.mark_fanout(l.0);
                    }
                }
            }
        }
        // Overrides are re-evaluated every settle, so their reset state
        // propagates without extra dirty marking.
        for behavior in self.overrides.iter_mut().flatten() {
            behavior.reset();
        }
        // Cone scratch latch slots carry sequential state too.
        if let Some(plan) = &mut self.cone {
            for &(l, _, init) in &plan.closure.latches {
                plan.values[plan.closure.slot[l as usize] as usize] = if init { !0 } else { 0 };
            }
        }
    }

    /// Precomputes the union fan-out cone of the currently overridden
    /// gates for [`Simulator::settle_cone_from64`]. Outside the cone a
    /// faulty evaluation equals the healthy circuit by construction, so
    /// batch evaluation can read those values from a healthy 64-lane
    /// twin and gate-simulate only the cone — overridden gates per lane,
    /// in lane order, which keeps stateful faulty cells on the exact
    /// evaluation sequence the scalar path would produce.
    ///
    /// The cone is closed across latches (a latch whose data input is in
    /// the cone joins it), so sequential netlists prune too: call
    /// [`Simulator::tick_cone_from64`] in place of [`Simulator::tick`]
    /// between batch settles. The closure itself is memoized per
    /// (netlist, seed set) — see [`Netlist::cone_closure`] — so cells
    /// that hit the same sites share the walk.
    ///
    /// Returns `false` (and installs nothing) when there is no override
    /// to prune around, or when an in-cone latch's data input is an
    /// out-of-cone latch (a latch-to-latch boundary whose mid-tick value
    /// cannot be recovered from a settled healthy twin).
    pub fn prepare_cone(&mut self) -> bool {
        self.cone = None;
        if self.n_overrides == 0 {
            return false;
        }
        let seeds: Vec<NodeId> = (0..self.overrides.len() as u32)
            .filter(|&i| self.overrides[i as usize].is_some())
            .map(NodeId)
            .collect();
        let closure = self.net.cone_closure(&seeds);
        if closure.boundary_chain {
            return false;
        }
        let mut values = vec![0u64; closure.n_slots as usize];
        for &(l, _, init) in &closure.latches {
            values[closure.slot[l as usize] as usize] = if init { !0 } else { 0 };
        }
        self.cone = Some(ConePlan { closure, values });
        true
    }

    /// True once [`Simulator::prepare_cone`] has installed a cone plan.
    pub fn cone_ready(&self) -> bool {
        self.cone.is_some()
    }

    /// Number of gates in the installed cone, if any.
    pub fn cone_len(&self) -> Option<usize> {
        self.cone.as_ref().map(|c| c.closure.sched.len())
    }

    /// Evaluates only the cone gates against `n_lanes` lanes of a
    /// settled healthy 64-lane twin driven with the same stimuli:
    /// in-cone pins read the 64-lane cone scratch words, out-of-cone
    /// pins read the healthy twin's words. Healthy cone gates evaluate
    /// word-parallel (all lanes in one op); each *overridden* gate
    /// evaluates per lane, in ascending lane order, so every stateful
    /// behavior advances through exactly the input sequence the scalar
    /// path would feed it. Behaviors are evaluated gate-by-gate rather
    /// than row-by-row, which is indistinguishable: each behavior's
    /// state is private, and cross-gate data flow follows the
    /// topological order either way. The simulator's own node values
    /// and event bookkeeping are untouched.
    ///
    /// # Panics
    ///
    /// Panics if no cone plan is installed (see
    /// [`Simulator::prepare_cone`]), `healthy` runs a different netlist,
    /// or `n_lanes > 64`.
    pub fn settle_cone_from64(&mut self, healthy: &Simulator64, n_lanes: usize) {
        let net = Arc::clone(&self.net);
        let (sched, pins) = net.schedule();
        let plan = self.cone.as_mut().expect("prepare_cone first");
        assert!(
            Arc::ptr_eq(&self.net, healthy.netlist_arc()),
            "netlist mismatch"
        );
        assert!(n_lanes <= 64, "at most 64 lanes");
        let overrides = &mut self.overrides;
        for &pos in &plan.closure.sched {
            let g = &sched[pos as usize];
            let p = &pins[g.in_start as usize..][..g.in_len as usize];
            let mut buf = [0u64; MAX_ARITY];
            for (k, &i) in p.iter().enumerate() {
                buf[k] = if plan.closure.in_cone[i as usize] {
                    plan.values[plan.closure.slot[i as usize] as usize]
                } else {
                    healthy.word(i)
                };
            }
            let v = match overrides[g.out as usize].as_mut() {
                Some(behavior) => {
                    // Per-lane, in lane order: one state advance per row.
                    let mut out = 0u64;
                    let mut lane_buf = [false; MAX_ARITY];
                    for lane in 0..n_lanes {
                        for (k, b) in lane_buf.iter_mut().take(p.len()).enumerate() {
                            *b = (buf[k] >> lane) & 1 == 1;
                        }
                        out |= u64::from(behavior.eval(&lane_buf[..p.len()])) << lane;
                    }
                    out
                }
                None => eval_kind64(g.kind, &buf[..p.len()]),
            };
            plan.values[plan.closure.slot[g.out as usize] as usize] = v;
        }
    }

    /// Latch capture for the cone scratch state, lane-parallel: each
    /// in-cone latch slot takes its data value — from the cone scratch
    /// words when the data node is in the cone, from the settled healthy
    /// twin otherwise. Updates happen in declaration order, in place,
    /// matching [`Simulator::tick`] exactly (including in-cone latch
    /// chains). Call after [`Simulator::settle_cone_from64`] and
    /// *before* ticking the healthy twin.
    ///
    /// # Panics
    ///
    /// Panics if no cone plan is installed.
    pub fn tick_cone_from64(&mut self, healthy: &Simulator64) {
        let plan = self.cone.as_mut().expect("prepare_cone first");
        for &(l, data, _) in &plan.closure.latches {
            let v = if plan.closure.in_cone[data as usize] {
                plan.values[plan.closure.slot[data as usize] as usize]
            } else {
                healthy.word(data)
            };
            plan.values[plan.closure.slot[l as usize] as usize] = v;
        }
    }

    /// Reads lane `lane` of a bus after [`Simulator::settle_cone_from64`]:
    /// in-cone bits from the cone scratch words, the rest from the
    /// healthy twin.
    pub fn read_word_cone(&self, healthy: &Simulator64, lane: usize, bus: &[NodeId]) -> u64 {
        let plan = self.cone.as_ref().expect("prepare_cone first");
        bus.iter().enumerate().fold(0u64, |acc, (bit, &id)| {
            let v = if plan.closure.in_cone[id.index()] {
                (plan.values[plan.closure.slot[id.index()] as usize] >> lane) & 1 == 1
            } else {
                healthy.lane_bit(id.0, lane)
            };
            acc | (u64::from(v) << bit)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::GateKind;
    use crate::netlist::NetlistBuilder;

    fn full_adder() -> (std::sync::Arc<Netlist>, [NodeId; 3], [NodeId; 2]) {
        let mut b = NetlistBuilder::new();
        let a = b.input("a");
        let x = b.input("b");
        let cin = b.input("cin");
        let axb = b.gate(GateKind::Xor2, &[a, x]);
        let sum = b.gate(GateKind::Xor2, &[axb, cin]);
        let t1 = b.gate(GateKind::And2, &[axb, cin]);
        let t2 = b.gate(GateKind::And2, &[a, x]);
        let cout = b.gate(GateKind::Or2, &[t1, t2]);
        b.output("sum", sum);
        b.output("cout", cout);
        (std::sync::Arc::new(b.build()), [a, x, cin], [sum, cout])
    }

    #[test]
    fn full_adder_truth_table() {
        let (net, ins, outs) = full_adder();
        let mut sim = Simulator::new(net.clone());
        for bits in 0u8..8 {
            let (a, b_, c) = (bits & 1 != 0, bits & 2 != 0, bits & 4 != 0);
            sim.set_input(ins[0], a);
            sim.set_input(ins[1], b_);
            sim.set_input(ins[2], c);
            sim.settle();
            let total = u8::from(a) + u8::from(b_) + u8::from(c);
            assert_eq!(sim.value(outs[0]), total & 1 == 1, "sum at {bits:03b}");
            assert_eq!(sim.value(outs[1]), total >= 2, "cout at {bits:03b}");
        }
    }

    #[test]
    fn word_helpers_roundtrip() {
        let mut b = NetlistBuilder::new();
        let bus = b.input_bus("x", 8);
        let inverted: Vec<_> = bus.iter().map(|&n| b.gate(GateKind::Not, &[n])).collect();
        b.output_bus("y", &inverted);
        let net = std::sync::Arc::new(b.build());
        let mut sim = Simulator::new(net.clone());
        sim.set_input_word(&bus, 0b1010_0110);
        sim.settle();
        assert_eq!(sim.read_word(&bus), 0b1010_0110);
        assert_eq!(sim.read_word(&inverted) as u8, !0b1010_0110u8);
    }

    #[test]
    fn latch_toggles_through_inverter() {
        let mut b = NetlistBuilder::new();
        let l = NodeId(1);
        let inv = b.gate(GateKind::Not, &[l]);
        let l_real = b.latch(inv, false);
        assert_eq!(l_real, l);
        b.output("q", l_real);
        let net = std::sync::Arc::new(b.build());
        let mut sim = Simulator::new(net.clone());
        let mut seen = Vec::new();
        for _ in 0..4 {
            sim.settle();
            seen.push(sim.output("q").unwrap());
            sim.tick();
        }
        assert_eq!(seen, vec![false, true, false, true]);
    }

    #[test]
    fn reset_restores_latch_init() {
        let mut b = NetlistBuilder::new();
        let d = b.input("d");
        let q = b.latch(d, true);
        b.output("q", q);
        let net = std::sync::Arc::new(b.build());
        let mut sim = Simulator::new(net.clone());
        assert!(sim.output("q").unwrap(), "init value");
        sim.set_input(d, false);
        sim.settle();
        sim.tick();
        assert!(!sim.output("q").unwrap());
        sim.reset_state();
        assert!(sim.output("q").unwrap(), "back to init");
    }

    #[derive(Debug)]
    struct AlwaysHigh;
    impl GateBehavior for AlwaysHigh {
        fn eval(&mut self, _inputs: &[bool]) -> bool {
            true
        }
    }

    #[test]
    fn override_replaces_gate_function() {
        let mut b = NetlistBuilder::new();
        let a = b.input("a");
        let g = b.gate(GateKind::Not, &[a]);
        b.output("y", g);
        let net = std::sync::Arc::new(b.build());
        let mut sim = Simulator::new(net.clone());
        sim.set_input(a, true);
        sim.settle();
        assert!(!sim.output("y").unwrap());

        sim.override_gate(g, Box::new(AlwaysHigh));
        assert_eq!(sim.override_count(), 1);
        sim.settle();
        assert!(sim.output("y").unwrap(), "faulty gate forces 1");

        sim.clear_override(g);
        sim.settle();
        assert!(!sim.output("y").unwrap(), "healthy again");
    }

    #[test]
    #[should_panic(expected = "not a primary input")]
    fn driving_gate_panics() {
        let mut b = NetlistBuilder::new();
        let a = b.input("a");
        let g = b.gate(GateKind::Not, &[a]);
        b.output("y", g);
        let net = std::sync::Arc::new(b.build());
        let mut sim = Simulator::new(net.clone());
        sim.set_input(g, true);
    }

    #[test]
    #[should_panic(expected = "not a gate")]
    fn overriding_input_panics() {
        let (net, ins, _) = full_adder();
        let mut sim = Simulator::new(net.clone());
        sim.override_gate(ins[0], Box::new(AlwaysHigh));
    }
}
