//! Program-optimization passes over fused LUT instruction streams.
//!
//! [`optimize`] rewrites a [`FusedProgram`] through three passes:
//!
//! 1. **Constant folding + copy propagation** — a LUT whose truth word
//!    collapses to all-zeros/all-ones over its live pins (the typical
//!    result of a stuck-fault-patched truth word, or of constant inputs
//!    such as the always-zero operands of physical synapses beyond the
//!    task width) becomes a *constant register*: materialized once at
//!    reset, never evaluated again. Constant pins are substituted into
//!    their consumers' truth words (Shannon restriction), pins a table
//!    does not actually depend on are dropped, and identity buffers are
//!    replaced by slot aliases.
//! 2. **Dead-LUT elimination** — instructions whose outputs nothing
//!    reads (transitively from the caller's root slots) are removed.
//!    Latch *data* slots are implicit roots: an instruction feeding a
//!    latch is state-bearing and is never eliminated, even when no
//!    combinational output depends on it this cycle.
//! 3. **Register-file liveness compaction** — surviving slots are
//!    renumbered densely so the working set stays cache-resident;
//!    [`SlotMap`] tells the caller where its slots went ([`DEAD_SLOT`]
//!    for eliminated ones, which the executor's bus writers skip).
//!
//! Stage windows ([`FusedProgram::stage_range`]) are preserved: an
//! instruction never migrates across a stage barrier, so runners that
//! interleave native work between stages are unaffected.

use crate::compile::{LatchSlot, LutInstr};
use crate::fuse::{FusedProgram, DEAD_SLOT};

/// What the optimizer did, for logging and benchmark breakdowns.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OptStats {
    /// Instructions folded into constant registers.
    pub folded: usize,
    /// Identity buffers replaced by slot aliases.
    pub propagated: usize,
    /// Dead instructions removed (nothing transitively read them).
    pub eliminated: usize,
    /// Operand pins dropped (constant or don't-care).
    pub pins_dropped: usize,
    /// Instruction count before / after.
    pub instrs_before: usize,
    /// Instruction count after all passes.
    pub instrs_after: usize,
    /// Register-file slots before / after compaction.
    pub slots_before: usize,
    /// Register-file slots after compaction.
    pub slots_after: usize,
}

/// Maps pre-optimization slot ids to the compacted register file.
#[derive(Clone, Debug)]
pub struct SlotMap {
    map: Vec<u32>,
}

impl SlotMap {
    /// Where an old slot lives now: aliases resolve to their source,
    /// folded constants to their constant register, eliminated slots to
    /// [`DEAD_SLOT`]. [`DEAD_SLOT`] maps to itself.
    pub fn get(&self, old: u32) -> u32 {
        if old == DEAD_SLOT {
            return DEAD_SLOT;
        }
        self.map[old as usize]
    }

    /// Remaps a whole bus.
    pub fn remap(&self, bus: &[u32]) -> Vec<u32> {
        bus.iter().map(|&s| self.get(s)).collect()
    }
}

/// Slot knowledge accumulated by the folding pass.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Val {
    Unknown,
    Const(bool),
    /// Alias targets are pre-resolved (never chained).
    Alias(u32),
}

/// Truth word with pin `k` fixed to `b`: the Shannon restriction over
/// the remaining `arity - 1` pins (higher pins shift down).
fn restrict(table: u16, arity: usize, k: usize, b: bool) -> u16 {
    let mut out = 0u16;
    let low_mask = (1usize << k) - 1;
    for v in 0..1usize << (arity - 1) {
        let orig = (v & low_mask) | (usize::from(b) << k) | ((v & !low_mask) << 1);
        out |= ((table >> orig) & 1) << v;
    }
    out
}

/// True if the table's output never depends on pin `k`.
fn pin_independent(table: u16, arity: usize, k: usize) -> bool {
    restrict(table, arity, k, false) == restrict(table, arity, k, true)
}

/// Optimizes a fused program against the given live output slots.
/// Equivalent to [`optimize_with_consts`] with no known-constant inputs.
pub fn optimize(prog: &FusedProgram, roots: &[u32]) -> (FusedProgram, SlotMap, OptStats) {
    optimize_with_consts(prog, roots, &[])
}

/// Optimizes a fused program. `roots` are the slots the caller reads
/// after execution (outputs); everything not transitively needed by a
/// root or a latch is removed. `known` declares input slots whose lanes
/// are a compile-time constant (e.g. operands that are structurally
/// zero), enabling folding through them.
///
/// Returns the rewritten program, the old→new [`SlotMap`], and pass
/// statistics. Bit-identical to the input program on every root and
/// latch under any sequence of stage executions and ticks.
pub fn optimize_with_consts(
    prog: &FusedProgram,
    roots: &[u32],
    known: &[(u32, bool)],
) -> (FusedProgram, SlotMap, OptStats) {
    let n = prog.n_slots();
    let mut stats = OptStats {
        instrs_before: prog.len(),
        slots_before: n,
        ..OptStats::default()
    };
    let mut vals = vec![Val::Unknown; n];
    for &(s, b) in prog.consts() {
        vals[s as usize] = Val::Const(b);
    }
    for &(s, b) in known {
        assert!(
            !matches!(vals[s as usize], Val::Alias(_)),
            "known const on an alias"
        );
        vals[s as usize] = Val::Const(b);
    }
    let resolve = |vals: &[Val], s: u32| -> u32 {
        match vals[s as usize] {
            Val::Alias(t) => t,
            _ => s,
        }
    };

    // Pass 1: constant folding, pin pruning, copy propagation. The
    // stream is rank-sorted (topological), so one forward sweep sees
    // every producer before its consumers.
    let mut kept: Vec<(usize, LutInstr)> = Vec::with_capacity(prog.len());
    for (idx, ins) in prog.instrs().iter().enumerate() {
        let mut ins = *ins;
        let mut k = 0usize;
        while k < ins.arity as usize {
            let p = resolve(&vals, ins.pins[k]);
            if let Val::Const(b) = vals[p as usize] {
                ins.table = restrict(ins.table, ins.arity as usize, k, b);
                ins.pins.copy_within(k + 1..ins.arity as usize, k);
                ins.arity -= 1;
                stats.pins_dropped += 1;
            } else {
                ins.pins[k] = p;
                k += 1;
            }
        }
        let mut k = 0usize;
        while k < ins.arity as usize {
            if pin_independent(ins.table, ins.arity as usize, k) {
                ins.table = restrict(ins.table, ins.arity as usize, k, false);
                ins.pins.copy_within(k + 1..ins.arity as usize, k);
                ins.arity -= 1;
                stats.pins_dropped += 1;
            } else {
                k += 1;
            }
        }
        let mask = ((1u32 << (1usize << ins.arity)) - 1) as u16;
        let t = ins.table & mask;
        if t == 0 || t == mask {
            vals[ins.out as usize] = Val::Const(t != 0);
            stats.folded += 1;
            continue;
        }
        if ins.arity == 1 && t == 0b10 {
            vals[ins.out as usize] = Val::Alias(ins.pins[0]);
            stats.propagated += 1;
            continue;
        }
        ins.table = t;
        // Zero out stale pin entries past the (possibly shrunk) arity so
        // equality/debugging never sees leftovers.
        for p in ins.pins.iter_mut().skip(ins.arity as usize) {
            *p = 0;
        }
        kept.push((idx, ins));
    }

    // Latches: the stored slot never folds (it is state); the data slot
    // resolves through aliases and is a mandatory liveness root.
    let latches: Vec<LatchSlot> = prog
        .latch_slots()
        .iter()
        .map(|ls| LatchSlot {
            latch: ls.latch,
            data: resolve(&vals, ls.data),
            init: ls.init,
        })
        .collect();

    // Pass 2: dead-LUT elimination, reverse sweep from roots + latches.
    let mut live = vec![false; n];
    for &r in roots {
        live[resolve(&vals, r) as usize] = true;
    }
    for ls in &latches {
        live[ls.latch as usize] = true;
        live[ls.data as usize] = true;
    }
    let mut survivors: Vec<(usize, LutInstr)> = Vec::with_capacity(kept.len());
    for &(idx, ins) in kept.iter().rev() {
        if live[ins.out as usize] {
            for k in 0..ins.arity as usize {
                live[ins.pins[k] as usize] = true;
            }
            survivors.push((idx, ins));
        } else {
            stats.eliminated += 1;
        }
    }
    survivors.reverse();

    // Constant registers that something still reads (a root or a latch
    // data slot; constant pins were substituted away above).
    let consts: Vec<(u32, bool)> = (0..n as u32)
        .filter(|&s| live[s as usize])
        .filter_map(|s| match vals[s as usize] {
            Val::Const(b) => Some((s, b)),
            _ => None,
        })
        .collect();

    // Stage of each original instruction, derived from its old rank.
    let old_rank_of = |idx: usize| -> usize {
        (0..prog.n_ranks())
            .find(|&r| prog.rank_range(r).contains(&idx))
            .expect("instruction has a rank")
    };
    let stage_of_rank = |r: usize| -> usize {
        (0..prog.n_stages())
            .rev()
            .find(|&s| prog.stage_rank_range(s).start <= r)
            .unwrap_or(0)
    };

    // Pass 3a: recompute ranks with per-stage floors so no survivor
    // migrates across a stage barrier.
    let mut slot_rank = vec![0u32; n];
    let mut new_ranks = Vec::with_capacity(survivors.len());
    let mut stage_floor = vec![0u32; prog.n_stages()];
    let mut cur_stage = 0usize;
    let mut floor = 0u32;
    let mut running_max = 0u32;
    let mut any = false;
    for &(idx, ins) in &survivors {
        let s = stage_of_rank(old_rank_of(idx));
        if s > cur_stage {
            let next = if any { running_max + 1 } else { 0 };
            for f in &mut stage_floor[cur_stage + 1..=s] {
                *f = next;
            }
            floor = next;
            cur_stage = s;
        }
        let mut rank = floor;
        for k in 0..ins.arity as usize {
            rank = rank.max(slot_rank[ins.pins[k] as usize] + 1);
        }
        slot_rank[ins.out as usize] = rank;
        running_max = running_max.max(rank);
        any = true;
        new_ranks.push(rank);
    }
    let tail = if any { running_max + 1 } else { 0 };
    for f in &mut stage_floor[cur_stage + 1..] {
        *f = tail;
    }

    // Pass 3b: liveness compaction — renumber surviving slots densely.
    let mut compact = vec![DEAD_SLOT; n];
    let mut n_new = 0u32;
    for s in 0..n {
        if live[s] {
            compact[s] = n_new;
            n_new += 1;
        }
    }
    let slot_map = SlotMap {
        map: (0..n as u32)
            .map(|s| {
                let r = resolve(&vals, s);
                if live[r as usize] {
                    compact[r as usize]
                } else {
                    DEAD_SLOT
                }
            })
            .collect(),
    };

    // Rebuild the rank-major stream.
    let n_ranks = if any { running_max as usize + 1 } else { 0 };
    let mut counts = vec![0u32; n_ranks];
    for &r in &new_ranks {
        counts[r as usize] += 1;
    }
    let mut rank_start = Vec::with_capacity(n_ranks + 1);
    let mut acc = 0u32;
    for &c in &counts {
        rank_start.push(acc);
        acc += c;
    }
    rank_start.push(acc);
    let mut cursor = rank_start[..n_ranks].to_vec();
    let mut instrs = vec![
        LutInstr {
            table: 0,
            arity: 0,
            out: 0,
            pins: [0; 4],
        };
        survivors.len()
    ];
    for (&(_, ins), &r) in survivors.iter().zip(&new_ranks) {
        let mut ins = ins;
        ins.out = compact[ins.out as usize];
        for k in 0..ins.arity as usize {
            ins.pins[k] = compact[ins.pins[k] as usize];
        }
        let at = cursor[r as usize];
        cursor[r as usize] += 1;
        instrs[at as usize] = ins;
    }
    let latches = latches
        .iter()
        .map(|ls| LatchSlot {
            latch: compact[ls.latch as usize],
            data: compact[ls.data as usize],
            init: ls.init,
        })
        .collect();
    let consts = consts
        .into_iter()
        .map(|(s, b)| (compact[s as usize], b))
        .collect();
    let stage_rank_lo = stage_floor.iter().map(|&f| f.min(n_ranks as u32)).collect();

    stats.instrs_after = survivors.len();
    stats.slots_after = n_new as usize;
    let optimized = FusedProgram::from_parts(
        instrs,
        rank_start,
        stage_rank_lo,
        n_new as usize,
        latches,
        consts,
    );
    (optimized, slot_map, stats)
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use super::*;
    use crate::compile::LutProgram;
    use crate::fuse::{FuseBuilder, FusedExec};
    use crate::gate::GateKind;
    use crate::netlist::NetlistBuilder;

    fn instr(table: u16, arity: u8, out: u32, pins: [u32; 4]) -> LutInstr {
        LutInstr {
            table,
            arity,
            out,
            pins,
        }
    }

    #[test]
    fn restriction_matches_exhaustive_eval() {
        // AND3 (table 0x80) with pin 1 fixed high = AND2 of pins 0,2.
        assert_eq!(restrict(0x80, 3, 1, true), 0b1000);
        assert_eq!(restrict(0x80, 3, 1, false), 0b0000);
        // XOR2 with pin 0 fixed = BUF/NOT of pin 1.
        assert_eq!(restrict(0b0110, 2, 0, false), 0b10);
        assert_eq!(restrict(0b0110, 2, 0, true), 0b01);
        assert!(!pin_independent(0b0110, 2, 0));
        // OR2 with one pin stuck high is independent of the other.
        assert!(pin_independent(restrict(0b1110, 2, 0, true), 1, 0));
    }

    #[test]
    fn constant_inputs_fold_through_the_stream() {
        // y = (a & c0) | b with c0 known-zero folds to y = b (alias),
        // which makes the whole stream disappear into the slot map.
        let mut fb = FuseBuilder::new();
        let a = fb.fresh_slot();
        let b = fb.fresh_slot();
        let c0 = fb.fresh_slot();
        let and = instr(0b1000, 2, 0, [0, 0, 0, 0]);
        let seg = [
            instr(and.table, 2, 3, [0, 2, 0, 0]), // local: a=0, b=1, c0=2
            instr(0b1110, 2, 4, [3, 1, 0, 0]),    // or
        ];
        let map = fb.append(&seg, 5, &[], &[(0, a), (1, b), (2, c0)]);
        let y = map[4];
        let prog = fb.finish();
        let (opt, sm, stats) = optimize_with_consts(&prog, &[y], &[(c0, false)]);
        assert_eq!(stats.folded, 1, "AND with zero folds");
        assert_eq!(stats.propagated, 1, "OR of zero is a copy");
        assert_eq!(opt.len(), 0);
        assert_eq!(sm.get(y), sm.get(b), "y aliases b");
        assert_ne!(sm.get(y), DEAD_SLOT);
        // a and c0 are dead.
        assert_eq!(sm.get(a), DEAD_SLOT);
        assert_eq!(sm.get(c0), DEAD_SLOT);
        // Executing the optimized program reproduces the identity.
        let mut ex = FusedExec::new(Arc::new(opt));
        ex.set_slot(sm.get(b), 0xF0F0);
        ex.exec();
        assert_eq!(ex.slot(sm.get(y)), 0xF0F0);
    }

    #[test]
    fn stuck_patched_tables_become_constant_registers() {
        // A gate patched to constant-one (stuck-at fault lowering) folds,
        // and its consumer's truth word absorbs the constant.
        let mut fb = FuseBuilder::new();
        let a = fb.fresh_slot();
        let b = fb.fresh_slot();
        let seg = [
            instr(0b1111, 2, 2, [0, 1, 0, 0]), // patched: always 1
            instr(0b1000, 2, 3, [2, 1, 0, 0]), // and(stuck, b) == b
        ];
        let map = fb.append(&seg, 4, &[], &[(0, a), (1, b)]);
        let prog = fb.finish();
        let (opt, sm, stats) = optimize(&prog, &[map[3]]);
        assert_eq!(stats.folded, 1);
        assert_eq!(stats.propagated, 1);
        assert!(opt.is_empty());
        assert_eq!(sm.get(map[3]), sm.get(b));
    }

    #[test]
    fn constant_roots_materialize_as_registers() {
        let mut fb = FuseBuilder::new();
        let a = fb.fresh_slot();
        let seg = [
            instr(0b11, 1, 1, [0, 0, 0, 0]),   // always 1 (patched)
            instr(0b01, 1, 2, [1, 0, 0, 0]),   // not -> always 0
            instr(0b0110, 2, 3, [1, 2, 0, 0]), // xor(1, 0) -> 1
        ];
        let map = fb.append(&seg, 4, &[], &[(0, a)]);
        let prog = fb.finish();
        let (opt, sm, stats) = optimize(&prog, &[map[3]]);
        assert_eq!(stats.folded, 3);
        assert!(opt.is_empty());
        assert_eq!(opt.consts().len(), 1);
        let mut ex = FusedExec::new(Arc::new(opt));
        assert_eq!(ex.slot(sm.get(map[3])), !0, "constant-one register");
        ex.exec();
        assert_eq!(ex.slot(sm.get(map[3])), !0);
    }

    #[test]
    fn dead_instructions_are_eliminated_but_latch_feeders_survive() {
        let mut b = NetlistBuilder::new();
        let d = b.input("d");
        let dead = b.gate(GateKind::And2, &[d, d]); // no reader
        let inc = b.gate(GateKind::Not, &[d]);
        let q = b.latch(inc, false); // latch fed by NOT
        let y = b.gate(GateKind::Xor2, &[q, d]);
        b.output("y", y);
        let net = Arc::new(b.build());
        let prog = Arc::new(LutProgram::compile(Arc::clone(&net)));
        let mut fb = FuseBuilder::new();
        let din = fb.fresh_slot();
        let map = fb.append(
            prog.instrs(),
            prog.n_slots(),
            prog.latch_slots(),
            &[(d.index() as u32, din)],
        );
        let fused = fb.finish();
        assert_eq!(fused.len(), 3);
        let (opt, sm, stats) = optimize(&fused, &[map[y.index()]]);
        assert_eq!(stats.eliminated, 1, "only the unread AND dies");
        assert_eq!(opt.len(), 2, "XOR and the latch-feeding NOT survive");
        assert_eq!(opt.latch_slots().len(), 1);
        assert_eq!(sm.get(map[dead.index()]), DEAD_SLOT);
        assert_ne!(sm.get(map[inc.index()]), DEAD_SLOT);
        // Tick behavior must be preserved.
        let mut ex = FusedExec::new(Arc::new(opt));
        let yq = sm.get(map[y.index()]);
        ex.set_slot(sm.get(din), 0b1);
        ex.exec();
        assert_eq!(ex.slot(yq) & 1, 1, "q=0 ^ d=1");
        ex.tick(); // q captures !d = 0
        ex.exec();
        assert_eq!(ex.slot(yq) & 1, 1);
        ex.set_slot(sm.get(din), 0b0);
        ex.exec();
        assert_eq!(ex.slot(yq) & 1, 0, "q=0 ^ d=0");
        ex.tick(); // q captures !d = 1
        ex.exec();
        assert_eq!(ex.slot(yq) & 1, 1);
    }

    #[test]
    fn stage_windows_survive_optimization() {
        let mut fb = FuseBuilder::new();
        let a = fb.fresh_slot();
        let m1 = fb.append(&[instr(0b01, 1, 1, [0, 0, 0, 0])], 2, &[], &[(0, a)]);
        fb.barrier();
        let r = fb.fresh_slot(); // runtime input written between stages
        let m2 = fb.append(
            &[instr(0b0110, 2, 2, [0, 1, 0, 0])],
            3,
            &[],
            &[(0, m1[1]), (1, r)],
        );
        let prog = fb.finish();
        assert_eq!(prog.n_stages(), 2);
        let (opt, sm, _) = optimize(&prog, &[m2[2]]);
        assert_eq!(opt.n_stages(), 2);
        assert_eq!(opt.stage_range(0).len(), 1);
        assert_eq!(opt.stage_range(1).len(), 1);
        // Stage-interleaved run still works on the optimized stream.
        let mut ex = FusedExec::new(Arc::new(opt));
        ex.set_slot(sm.get(a), 0b01);
        ex.exec_stage(0);
        ex.set_slot(sm.get(r), 0b11);
        ex.exec_stage(1);
        // y = not(a) ^ r
        assert_eq!(ex.slot(sm.get(m2[2])) & 0b11, 0b01);
    }

    #[test]
    fn compaction_renumbers_densely() {
        let mut fb = FuseBuilder::new();
        let a = fb.fresh_slot();
        let _unused = fb.fresh_bus(10); // slots that die
        let b = fb.fresh_slot();
        let m = fb.append(
            &[instr(0b0110, 2, 2, [0, 1, 0, 0])],
            3,
            &[],
            &[(0, a), (1, b)],
        );
        let prog = fb.finish();
        assert_eq!(prog.n_slots(), 13);
        let (opt, sm, stats) = optimize(&prog, &[m[2]]);
        assert_eq!(stats.slots_after, 3);
        assert_eq!(opt.n_slots(), 3);
        let slots = [sm.get(a), sm.get(b), sm.get(m[2])];
        assert!(slots.iter().all(|&s| s < 3));
    }
}
