//! Netlist → LUT instruction-stream compiler (the emulation-engine
//! backend).
//!
//! The interpreting engines ([`crate::Simulator`], [`crate::Simulator64`])
//! dispatch on [`GateKind`] for every gate of every settle. This module
//! instead *compiles* a netlist once: gates are packed into k-input LUT
//! instructions — a truth-table word plus operand slot indices into a
//! flat register file — and emitted as a static straight-line schedule
//! ordered by topological rank. [`crate::LutExec`] then evaluates the
//! stream as branchless 64-lane table lookups, and faulty gates are
//! handled by *patching the truth word in place* (permanent defects) or
//! by per-lane behavioral re-evaluation (stateful/intermittent defects),
//! so defect sweeps run at the same speed as the healthy circuit.
//!
//! Ranks (longest-path levels) are recorded per instruction so a large
//! netlist can be partitioned across threads with one barrier per rank:
//! instructions inside a rank only read slots written by strictly lower
//! ranks, never each other.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::gate::GateKind;
use crate::netlist::{Netlist, Node, NodeId};

/// Benchmark/testing hook: when set, operator wiring that would prefer
/// the compiled LUT instruction stream falls back to the interpreting
/// engines. Sampled when an operator (re)builds its engines, exactly like
/// [`crate::force_full_settle`]. Results are bit-identical either way.
static DISABLE_LUT: AtomicBool = AtomicBool::new(false);

/// Disables (or re-enables) the LUT instruction-stream backend for every
/// operator built afterwards in this process. Only meant for benchmarks
/// and differential tests that cross-check the LUT schedule against the
/// interpreting engines.
pub fn disable_lut_backend(on: bool) {
    DISABLE_LUT.store(on, Ordering::SeqCst);
}

/// True while [`disable_lut_backend`] is in effect.
pub fn lut_backend_disabled() -> bool {
    DISABLE_LUT.load(Ordering::SeqCst)
}

static CACHE_HITS: AtomicU64 = AtomicU64::new(0);
static CACHE_MISSES: AtomicU64 = AtomicU64::new(0);

/// Process-wide `(hits, misses)` of [`LutProgram::cached`], for
/// benchmark breakdowns that measure — not assert — how compilation
/// amortizes across campaign cells. Monotone; diff two samples to
/// attribute a phase.
pub fn program_cache_stats() -> (u64, u64) {
    (
        CACHE_HITS.load(Ordering::Relaxed),
        CACHE_MISSES.load(Ordering::Relaxed),
    )
}

/// Broadcasts bit `v` of a truth word across all 64 lanes.
#[inline(always)]
fn spread(t: u16, v: u32) -> u64 {
    0u64.wrapping_sub(u64::from((t >> v) & 1))
}

/// 2-input LUT over 64-lane words: minterm-masked, branchless.
#[inline(always)]
fn lut2(t: u16, a: u64, b: u64) -> u64 {
    let (na, nb) = (!a, !b);
    (spread(t, 0) & na & nb)
        | (spread(t, 1) & a & nb)
        | (spread(t, 2) & na & b)
        | (spread(t, 3) & a & b)
}

/// 3-input LUT: Shannon expansion on the third operand.
#[inline(always)]
fn lut3(t: u16, a: u64, b: u64, c: u64) -> u64 {
    (!c & lut2(t & 0xF, a, b)) | (c & lut2(t >> 4, a, b))
}

/// 4-input LUT: Shannon expansion on the fourth operand.
#[inline(always)]
fn lut4(t: u16, a: u64, b: u64, c: u64, d: u64) -> u64 {
    (!d & lut3(t & 0xFF, a, b, c)) | (d & lut3(t >> 8, a, b, c))
}

/// One compiled LUT instruction: up to 4 operand slots, a truth-table
/// word, and an output slot. Slots index the executor's flat 64-lane
/// register file (slot = node index of the netlist).
///
/// The truth word follows the repo-wide packed-pin convention: bit `v`
/// is the output for the input assignment where pin `k` carries bit `k`
/// of `v`. Bits at and above `1 << arity` are ignored.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LutInstr {
    /// Truth-table word (patched in place for permanent faulty gates).
    pub table: u16,
    /// Number of live operand slots (cell arity, at most 4).
    pub arity: u8,
    /// Output slot in the flat register file.
    pub out: u32,
    /// Operand slots; entries past `arity` are zero and never read.
    pub pins: [u32; 4],
}

impl LutInstr {
    /// Evaluates the instruction over 64-lane words, reading operand
    /// slots through `read`. Branchless per arity class: 2-input cells
    /// (the bulk of the library) cost four minterm mask-and-merges;
    /// wider cells add one Shannon level per extra pin.
    #[inline(always)]
    pub fn eval_with(&self, read: impl Fn(u32) -> u64) -> u64 {
        match self.arity {
            0 => spread(self.table, 0),
            1 => {
                let a = read(self.pins[0]);
                (spread(self.table, 0) & !a) | (spread(self.table, 1) & a)
            }
            2 => lut2(self.table, read(self.pins[0]), read(self.pins[1])),
            3 => lut3(
                self.table,
                read(self.pins[0]),
                read(self.pins[1]),
                read(self.pins[2]),
            ),
            _ => lut4(
                self.table,
                read(self.pins[0]),
                read(self.pins[1]),
                read(self.pins[2]),
                read(self.pins[3]),
            ),
        }
    }

    /// Evaluates the instruction over a flat register file.
    #[inline(always)]
    pub fn eval(&self, regs: &[u64]) -> u64 {
        self.eval_with(|slot| regs[slot as usize])
    }
}

/// Computes the truth word of a healthy cell by exhaustive evaluation
/// of [`GateKind::eval`] over all `2^arity` packed pin assignments.
pub fn kind_table(kind: GateKind) -> u16 {
    let n = kind.arity();
    let mut table = 0u16;
    let mut buf = [false; 4];
    for v in 0..1u16 << n {
        for (k, b) in buf.iter_mut().enumerate().take(n) {
            *b = (v >> k) & 1 == 1;
        }
        if kind.eval(&buf[..n]) {
            table |= 1 << v;
        }
    }
    table
}

/// A latch compiled to register-file bookkeeping: on
/// [`crate::LutExec::tick`] slot `latch` captures slot `data`.
#[derive(Clone, Copy, Debug)]
pub struct LatchSlot {
    /// The latch's own register slot.
    pub latch: u32,
    /// The register slot of its data input.
    pub data: u32,
    /// Power-on value, broadcast across all lanes on reset.
    pub init: bool,
}

/// A netlist compiled to a rank-ordered LUT instruction stream.
///
/// Instructions are sorted by topological rank (longest-path level),
/// stable within a rank, so the stream is itself a valid straight-line
/// schedule *and* the per-rank ranges can be executed concurrently with
/// one barrier per rank ([`Netlist`] guarantees the gate DAG is acyclic).
#[derive(Debug)]
pub struct LutProgram {
    net: Arc<Netlist>,
    instrs: Vec<LutInstr>,
    /// Rank `r` spans `instrs[rank_start[r] as usize..rank_start[r+1] as usize]`.
    rank_start: Vec<u32>,
    /// Node index → instruction position (`u32::MAX` for non-gates).
    instr_of: Vec<u32>,
    latches: Vec<LatchSlot>,
}

impl LutProgram {
    /// Compiles a netlist into a LUT instruction stream.
    pub fn compile(net: Arc<Netlist>) -> LutProgram {
        let n = net.len();
        // Longest-path rank per node: inputs, latches and constants sit
        // at rank 0; a gate sits one level above its deepest operand.
        let mut rank = vec![0u32; n];
        let mut n_ranks = 1u32;
        for &id in &net.order {
            if let Node::Gate { inputs, .. } = net.node(id) {
                let r = inputs
                    .iter()
                    .map(|i| rank[i.index()] + 1)
                    .max()
                    .unwrap_or(0);
                rank[id.index()] = r;
                n_ranks = n_ranks.max(r + 1);
            }
        }

        // Bucket the schedule's gates by rank (stable within a rank).
        let (sched, pins) = net.schedule();
        let mut counts = vec![0u32; n_ranks as usize];
        for g in sched {
            counts[rank[g.out as usize] as usize] += 1;
        }
        let mut rank_start = Vec::with_capacity(n_ranks as usize + 1);
        let mut acc = 0u32;
        for &c in &counts {
            rank_start.push(acc);
            acc += c;
        }
        rank_start.push(acc);

        let mut cursor = rank_start[..n_ranks as usize].to_vec();
        let mut instrs = vec![
            LutInstr {
                table: 0,
                arity: 0,
                out: 0,
                pins: [0; 4],
            };
            sched.len()
        ];
        let mut instr_of = vec![u32::MAX; n];
        for g in sched {
            let p = &pins[g.in_start as usize..][..g.in_len as usize];
            let mut slots = [0u32; 4];
            slots[..p.len()].copy_from_slice(p);
            let at = cursor[rank[g.out as usize] as usize];
            cursor[rank[g.out as usize] as usize] += 1;
            instrs[at as usize] = LutInstr {
                table: kind_table(g.kind),
                arity: g.in_len,
                out: g.out,
                pins: slots,
            };
            instr_of[g.out as usize] = at;
        }

        let latches = net
            .latches()
            .iter()
            .map(|&l| match net.node(l) {
                Node::Latch { data, init } => LatchSlot {
                    latch: l.0,
                    data: data.0,
                    init: *init,
                },
                _ => unreachable!("latch list holds latches"),
            })
            .collect();

        LutProgram {
            net,
            instrs,
            rank_start,
            instr_of,
            latches,
        }
    }

    /// Compiles (or returns the process-wide memoized compilation of)
    /// `net`. Operators sharing one circuit — every campaign cell built
    /// from the operator library — compile exactly once; later cells
    /// reuse the schedule and only patch their own defect sites. The
    /// cache pins each netlist `Arc` so pointer keys can never alias.
    pub fn cached(net: &Arc<Netlist>) -> Arc<LutProgram> {
        static PROGRAMS: OnceLock<ProgramCache> = OnceLock::new();
        let cache = PROGRAMS.get_or_init(|| Mutex::new(HashMap::new()));
        let key = Arc::as_ptr(net) as usize;
        let mut map = cache.lock().expect("LUT program cache poisoned");
        if let Some((_, prog)) = map.get(&key) {
            CACHE_HITS.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(prog);
        }
        CACHE_MISSES.fetch_add(1, Ordering::Relaxed);
        let prog = Arc::new(LutProgram::compile(Arc::clone(net)));
        map.insert(key, (Arc::clone(net), Arc::clone(&prog)));
        prog
    }

    /// The compiled netlist.
    pub fn netlist(&self) -> &Arc<Netlist> {
        &self.net
    }

    /// The instruction stream, in rank order.
    pub fn instrs(&self) -> &[LutInstr] {
        &self.instrs
    }

    /// Number of instructions (gates).
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// True if the program has no instructions.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// Number of topological ranks.
    pub fn n_ranks(&self) -> usize {
        self.rank_start.len() - 1
    }

    /// The instruction range of one rank.
    pub fn rank_range(&self, rank: usize) -> std::ops::Range<usize> {
        self.rank_start[rank] as usize..self.rank_start[rank + 1] as usize
    }

    /// The instruction position of a gate node, if `id` is a gate.
    pub fn instr_index(&self, id: NodeId) -> Option<usize> {
        match self.instr_of.get(id.index()) {
            Some(&p) if p != u32::MAX => Some(p as usize),
            _ => None,
        }
    }

    /// The latch capture list (declaration order, matching
    /// [`crate::Simulator::tick`] semantics).
    pub fn latch_slots(&self) -> &[LatchSlot] {
        &self.latches
    }

    /// Number of register-file slots an executor needs.
    pub fn n_slots(&self) -> usize {
        self.net.len()
    }
}

type ProgramCache = Mutex<HashMap<usize, (Arc<Netlist>, Arc<LutProgram>)>>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::NetlistBuilder;

    #[test]
    fn kind_tables_match_eval() {
        for kind in GateKind::ALL {
            let t = kind_table(kind);
            let n = kind.arity();
            for v in 0..1u16 << n {
                let ins: Vec<bool> = (0..n).map(|k| (v >> k) & 1 == 1).collect();
                assert_eq!((t >> v) & 1 == 1, kind.eval(&ins), "{kind} at {v:b}");
            }
        }
        assert_eq!(kind_table(GateKind::Const(true)) & 1, 1);
        assert_eq!(kind_table(GateKind::Const(false)) & 1, 0);
    }

    #[test]
    fn lut_kernels_match_tables() {
        // Every library cell, exhaustive over lanes carrying all packed
        // assignments at once.
        for kind in GateKind::ALL {
            let t = kind_table(kind);
            let n = kind.arity();
            // Lane v carries assignment v.
            let mut ops = [0u64; 4];
            for v in 0..1u64 << n {
                for (k, op) in ops.iter_mut().enumerate().take(n) {
                    *op |= ((v >> k) & 1) << v;
                }
            }
            let instr = LutInstr {
                table: t,
                arity: n as u8,
                out: 0,
                pins: [0, 1, 2, 3],
            };
            let got = instr.eval_with(|slot| ops[slot as usize]);
            for v in 0..1u64 << n {
                assert_eq!((got >> v) & 1 == 1, (t >> v) & 1 == 1, "{kind} lane {v}");
            }
        }
    }

    #[test]
    fn ranks_are_topological() {
        let mut b = NetlistBuilder::new();
        let a = b.input("a");
        let x = b.input("x");
        let g1 = b.gate(GateKind::And2, &[a, x]);
        let g2 = b.gate(GateKind::Not, &[g1]);
        let g3 = b.gate(GateKind::Or2, &[g2, a]);
        b.output("y", g3);
        let net = Arc::new(b.build());
        let prog = LutProgram::compile(Arc::clone(&net));
        // Rank 0 holds inputs/constants, so a depth-3 path spans 4 ranks.
        assert_eq!(prog.n_ranks(), 4);
        assert_eq!(prog.len(), 3);
        // Every operand of a rank-r instruction is written by a lower
        // rank (or is an input slot, never written).
        for r in 0..prog.n_ranks() {
            for i in prog.rank_range(r) {
                let ins = prog.instrs()[i];
                for k in 0..ins.arity as usize {
                    if let Some(src) = prog.instr_index(NodeId(ins.pins[k])) {
                        let src_rank = (0..prog.n_ranks())
                            .find(|&rr| prog.rank_range(rr).contains(&src))
                            .unwrap();
                        assert!(src_rank < r, "operand written in rank {src_rank} >= {r}");
                    }
                }
            }
        }
    }

    #[test]
    fn cached_compiles_once_per_netlist() {
        let mut b = NetlistBuilder::new();
        let a = b.input("a");
        let g = b.gate(GateKind::Not, &[a]);
        b.output("y", g);
        let net = Arc::new(b.build());
        let p1 = LutProgram::cached(&net);
        let p2 = LutProgram::cached(&net);
        assert!(Arc::ptr_eq(&p1, &p2));
    }

    #[test]
    fn lut_hook_toggles() {
        assert!(!lut_backend_disabled());
        disable_lut_backend(true);
        assert!(lut_backend_disabled());
        disable_lut_backend(false);
        assert!(!lut_backend_disabled());
    }
}
