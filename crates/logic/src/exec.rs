//! Straight-line executor for compiled LUT instruction streams.
//!
//! [`LutExec`] evaluates a [`LutProgram`] as 64-lane table lookups: every
//! register slot carries a `u64` whose bit `l` is the slot's value in
//! lane `l` (one lane per row or defect configuration), and one sweep
//! over the stream settles all 64 circuit instances with zero dispatch,
//! zero dirty-tracking and zero override checks. Faults are lowered two
//! ways:
//!
//! - **Permanent combinational** defects patch the affected
//!   instruction's truth word in place ([`LutExec::patch_gate`]) — the
//!   faulty sweep then costs exactly as much as the healthy sweep.
//! - **Stateful or dynamically activated** defects install a scalar
//!   [`GateBehavior`] ([`LutExec::override_gate`]); the executor drops to
//!   per-lane evaluation for those instructions only, in ascending lane
//!   order, so every behavior advances through exactly the input
//!   sequence the scalar [`crate::Simulator`] would feed it. This keeps
//!   the stream bit-identical to [`crate::SettleMode::Event`].

use std::sync::Arc;

use crate::compile::{LutInstr, LutProgram};
use crate::gate::GateBehavior;
use crate::netlist::{Netlist, Node, NodeId};
use crate::sim::MAX_ARITY;

/// A per-lane behavioral override bound to one instruction position.
#[derive(Debug)]
struct OverrideSlot {
    /// Position in the instruction stream.
    pos: u32,
    behavior: Box<dyn GateBehavior>,
}

/// The LUT instruction-stream evaluation engine; mirrors
/// [`crate::Simulator64`]'s lane conventions (`set_input_words` puts
/// `words[l]` in lane `l`, LSB-first buses, missing lanes zero).
#[derive(Debug)]
pub struct LutExec {
    prog: Arc<LutProgram>,
    /// Private copy of the stream so truth words can be patched without
    /// touching the shared program.
    instrs: Vec<LutInstr>,
    regs: Vec<u64>,
    /// Per-lane overrides, ascending by instruction position.
    overrides: Vec<OverrideSlot>,
    n_patched: usize,
    n_lanes: usize,
}

impl LutExec {
    /// Creates an executor over a compiled program: all inputs low,
    /// latch slots at their init value in every lane, 64 active lanes.
    pub fn new(prog: Arc<LutProgram>) -> LutExec {
        let mut regs = vec![0u64; prog.n_slots()];
        for ls in prog.latch_slots() {
            regs[ls.latch as usize] = if ls.init { !0 } else { 0 };
        }
        LutExec {
            instrs: prog.instrs().to_vec(),
            regs,
            prog,
            overrides: Vec::new(),
            n_patched: 0,
            n_lanes: 64,
        }
    }

    /// The compiled program this executor runs.
    pub fn program(&self) -> &Arc<LutProgram> {
        &self.prog
    }

    /// The netlist behind the program.
    pub fn netlist(&self) -> &Arc<Netlist> {
        self.prog.netlist()
    }

    /// The executor's private (possibly patched) instruction stream, in
    /// the program's rank-major schedule order.
    pub fn instrs(&self) -> &[LutInstr] {
        &self.instrs
    }

    /// Limits per-lane override evaluation to the first `n` lanes, so
    /// stateful behaviors advance exactly once per *row* rather than
    /// once per hardware lane when a batch is not a full 64 rows.
    ///
    /// # Panics
    ///
    /// Panics if `n > 64`.
    pub fn set_active_lanes(&mut self, n: usize) {
        assert!(n <= 64, "at most 64 lanes");
        self.n_lanes = n;
    }

    /// Drives a primary input with a 64-lane mask (bit `l` = lane `l`).
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a primary input.
    pub fn set_input_lanes(&mut self, id: NodeId, lanes: u64) {
        assert!(
            matches!(self.netlist().node(id), Node::Input { .. }),
            "{id} is not a primary input"
        );
        self.regs[id.index()] = lanes;
    }

    /// Drives a bus so lane `l` carries `words[l]` (LSB-first bus);
    /// fewer than 64 words leave the remaining lanes at zero.
    ///
    /// # Panics
    ///
    /// Panics if more than 64 words are supplied.
    pub fn set_input_words(&mut self, bus: &[NodeId], words: &[u64]) {
        assert!(words.len() <= 64, "at most 64 lanes");
        for (bit, &id) in bus.iter().enumerate() {
            let mut lanes = 0u64;
            for (l, &w) in words.iter().enumerate() {
                lanes |= ((w >> bit) & 1) << l;
            }
            self.set_input_lanes(id, lanes);
        }
    }

    /// Executes the straight-line schedule once, settling all lanes.
    pub fn exec(&mut self) {
        if self.overrides.is_empty() {
            for ins in &self.instrs {
                let v = ins.eval(&self.regs);
                self.regs[ins.out as usize] = v;
            }
            return;
        }
        let n_lanes = self.n_lanes;
        let mut next_ov = 0usize;
        for (pos, ins) in self.instrs.iter().enumerate() {
            let v = if next_ov < self.overrides.len() && self.overrides[next_ov].pos == pos as u32 {
                let slot = &mut self.overrides[next_ov];
                next_ov += 1;
                let mut buf = [0u64; MAX_ARITY];
                for (k, b) in buf.iter_mut().enumerate().take(ins.arity as usize) {
                    *b = self.regs[ins.pins[k] as usize];
                }
                // Per lane, in lane order: one state advance per row.
                let mut out = 0u64;
                let mut lane_buf = [false; MAX_ARITY];
                for lane in 0..n_lanes {
                    for (k, b) in lane_buf.iter_mut().take(ins.arity as usize).enumerate() {
                        *b = (buf[k] >> lane) & 1 == 1;
                    }
                    out |= u64::from(slot.behavior.eval(&lane_buf[..ins.arity as usize])) << lane;
                }
                out
            } else {
                ins.eval(&self.regs)
            };
            self.regs[ins.out as usize] = v;
        }
    }

    /// Latch capture across all lanes: each latch slot takes its data
    /// slot's current word, in declaration order (in-place, matching
    /// [`crate::Simulator::tick`] exactly, including latch chains).
    pub fn tick(&mut self) {
        for ls in self.prog.latch_slots() {
            self.regs[ls.latch as usize] = self.regs[ls.data as usize];
        }
    }

    /// Resets latch slots to their init values and clears the internal
    /// state of every per-lane override. Truth-word patches persist
    /// (permanent defects survive reset, like re-applying a plan).
    pub fn reset_state(&mut self) {
        for ls in self.prog.latch_slots() {
            self.regs[ls.latch as usize] = if ls.init { !0 } else { 0 };
        }
        for slot in &mut self.overrides {
            slot.behavior.reset();
        }
    }

    /// The 64-lane word of any node slot.
    pub fn lanes(&self, id: NodeId) -> u64 {
        self.regs[id.index()]
    }

    /// Reads lane `lane` of a bus back as a word (LSB-first).
    pub fn read_word_lane(&self, bus: &[NodeId], lane: usize) -> u64 {
        assert!(lane < 64);
        bus.iter().enumerate().fold(0u64, |acc, (bit, &id)| {
            acc | (((self.regs[id.index()] >> lane) & 1) << bit)
        })
    }

    /// Reads the first `n_lanes` lanes of a bus back as words.
    pub fn read_words(&self, bus: &[NodeId], n_lanes: usize) -> Vec<u64> {
        (0..n_lanes).map(|l| self.read_word_lane(bus, l)).collect()
    }

    /// Patches the truth word of a gate's instruction in place — the
    /// permanent-defect lowering. The faulty sweep then costs exactly as
    /// much as a healthy sweep. Any per-lane override on the same gate
    /// is removed.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a gate node.
    pub fn patch_gate(&mut self, id: NodeId, table: u16) {
        let pos = self
            .prog
            .instr_index(id)
            .unwrap_or_else(|| panic!("{id} is not a gate"));
        self.overrides.retain(|s| s.pos != pos as u32);
        if self.instrs[pos].table != table {
            self.instrs[pos].table = table;
        }
        if self.prog.instrs()[pos].table != table {
            self.n_patched = self
                .instrs
                .iter()
                .zip(self.prog.instrs())
                .filter(|(a, b)| a.table != b.table)
                .count();
        }
    }

    /// Installs a per-lane behavioral override (the stateful /
    /// dynamically-activated lowering). The instruction's truth word is
    /// restored to the program's word; the behavior fully determines
    /// the gate's output.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a gate node.
    pub fn override_gate(&mut self, id: NodeId, behavior: Box<dyn GateBehavior>) {
        let pos = self
            .prog
            .instr_index(id)
            .unwrap_or_else(|| panic!("{id} is not a gate"));
        self.instrs[pos].table = self.prog.instrs()[pos].table;
        let pos = pos as u32;
        match self.overrides.binary_search_by_key(&pos, |s| s.pos) {
            Ok(i) => self.overrides[i].behavior = behavior,
            Err(i) => self.overrides.insert(i, OverrideSlot { pos, behavior }),
        }
        self.n_patched = self
            .instrs
            .iter()
            .zip(self.prog.instrs())
            .filter(|(a, b)| a.table != b.table)
            .count();
    }

    /// Number of instructions whose truth word differs from the healthy
    /// program.
    pub fn patched_count(&self) -> usize {
        self.n_patched
    }

    /// Number of per-lane behavioral overrides installed.
    pub fn override_count(&self) -> usize {
        self.overrides.len()
    }

    /// True when every fault is a truth-word patch (no per-lane
    /// overrides): the sweep is fully branchless and word-parallel.
    pub fn fully_patched(&self) -> bool {
        self.overrides.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::GateKind;
    use crate::netlist::NetlistBuilder;
    use crate::sim::Simulator;
    use crate::sim64::Simulator64;

    fn ripple_adder4() -> (Arc<Netlist>, Vec<NodeId>, Vec<NodeId>, Vec<NodeId>) {
        let mut b = NetlistBuilder::new();
        let a = b.input_bus("a", 4);
        let x = b.input_bus("b", 4);
        let mut carry = b.constant(false);
        let mut sum = Vec::new();
        for i in 0..4 {
            let axb = b.gate(GateKind::Xor2, &[a[i], x[i]]);
            let s = b.gate(GateKind::Xor2, &[axb, carry]);
            let t1 = b.gate(GateKind::And2, &[axb, carry]);
            let t2 = b.gate(GateKind::And2, &[a[i], x[i]]);
            carry = b.gate(GateKind::Or2, &[t1, t2]);
            sum.push(s);
        }
        sum.push(carry);
        b.output_bus("s", &sum);
        (Arc::new(b.build()), a, x, sum)
    }

    #[test]
    fn lut_adder_matches_simulator64_exhaustively() {
        let (net, a, x, sum) = ripple_adder4();
        let prog = Arc::new(LutProgram::compile(Arc::clone(&net)));
        let mut ex = LutExec::new(prog);
        let mut v = Simulator64::new(Arc::clone(&net));
        for batch in 0..4u64 {
            let pa: Vec<u64> = (0..64).map(|i| (batch * 64 + i) / 16).collect();
            let pb: Vec<u64> = (0..64).map(|i| (batch * 64 + i) % 16).collect();
            ex.set_input_words(&a, &pa);
            ex.set_input_words(&x, &pb);
            ex.exec();
            v.set_input_words(&a, &pa);
            v.set_input_words(&x, &pb);
            v.settle();
            for l in 0..64 {
                assert_eq!(
                    ex.read_word_lane(&sum, l),
                    v.read_word_lane(&sum, l),
                    "lane {l}"
                );
                assert_eq!(ex.read_word_lane(&sum, l), pa[l] + pb[l]);
            }
        }
    }

    #[test]
    fn patched_instruction_matches_overridden_simulator() {
        let (net, a, x, sum) = ripple_adder4();
        let gate = net
            .gates()
            .find(|(_, k)| *k == GateKind::Xor2)
            .map(|(id, _)| id)
            .unwrap();
        // Patch the XOR to constant-1 (output stuck high).
        let prog = Arc::new(LutProgram::compile(Arc::clone(&net)));
        let mut ex = LutExec::new(prog);
        ex.patch_gate(gate, 0xF);
        assert_eq!(ex.patched_count(), 1);
        assert!(ex.fully_patched());

        let mut s = Simulator::new(Arc::clone(&net));
        let mut stuck = crate::stuck::StuckSet::new(GateKind::Xor2);
        stuck.add(crate::stuck::StuckPort::Output, true);
        s.override_gate(gate, Box::new(stuck));

        for (pa, pb) in [(0u64, 0u64), (3, 5), (15, 15), (9, 6)] {
            ex.set_input_words(&a, &[pa]);
            ex.set_input_words(&x, &[pb]);
            ex.exec();
            s.set_input_word(&a, pa);
            s.set_input_word(&x, pb);
            s.settle();
            assert_eq!(ex.read_word_lane(&sum, 0), s.read_word(&sum));
        }
    }

    #[derive(Debug)]
    struct ToggleHigh {
        phase: bool,
    }
    impl GateBehavior for ToggleHigh {
        fn eval(&mut self, inputs: &[bool]) -> bool {
            self.phase = !self.phase;
            if self.phase {
                true
            } else {
                inputs.iter().any(|&b| b)
            }
        }
        fn reset(&mut self) {
            self.phase = false;
        }
    }

    #[test]
    fn stateful_override_advances_in_lane_order() {
        let (net, a, x, sum) = ripple_adder4();
        let gate = net
            .gates()
            .find(|(_, k)| *k == GateKind::Or2)
            .map(|(id, _)| id)
            .unwrap();
        let rows: Vec<(u64, u64)> = (0..64).map(|i| (i % 16, (i * 7) % 16)).collect();

        let prog = Arc::new(LutProgram::compile(Arc::clone(&net)));
        let mut ex = LutExec::new(prog);
        ex.override_gate(gate, Box::new(ToggleHigh { phase: false }));
        assert!(!ex.fully_patched());
        let pa: Vec<u64> = rows.iter().map(|r| r.0).collect();
        let pb: Vec<u64> = rows.iter().map(|r| r.1).collect();
        ex.set_input_words(&a, &pa);
        ex.set_input_words(&x, &pb);
        ex.exec();

        // Scalar oracle: rows in order, one behavior advance per row.
        let mut s = Simulator::new(Arc::clone(&net));
        s.override_gate(gate, Box::new(ToggleHigh { phase: false }));
        for (l, &(ra, rb)) in rows.iter().enumerate() {
            s.set_input_word(&a, ra);
            s.set_input_word(&x, rb);
            s.settle();
            assert_eq!(ex.read_word_lane(&sum, l), s.read_word(&sum), "row {l}");
        }
    }

    #[test]
    fn latches_tick_and_reset() {
        let mut b = NetlistBuilder::new();
        let d = b.input("d");
        let q = b.latch(d, true);
        let nq = b.gate(GateKind::Not, &[q]);
        b.output("q", q);
        b.output("nq", nq);
        let net = Arc::new(b.build());
        let prog = Arc::new(LutProgram::compile(Arc::clone(&net)));
        let mut ex = LutExec::new(prog);
        assert_eq!(ex.lanes(q), !0, "init high in every lane");
        ex.set_input_lanes(d, 0xF0F0);
        ex.exec();
        assert_eq!(ex.lanes(q), !0, "not captured yet");
        assert_eq!(ex.lanes(nq), 0);
        ex.tick();
        ex.exec();
        assert_eq!(ex.lanes(q), 0xF0F0);
        assert_eq!(ex.lanes(nq), !0xF0F0);
        ex.reset_state();
        assert_eq!(ex.lanes(q), !0);
    }

    #[test]
    fn active_lanes_bound_stateful_advances() {
        let mut b = NetlistBuilder::new();
        let a = b.input("a");
        let g = b.gate(GateKind::Buf, &[a]);
        b.output("y", g);
        let net = Arc::new(b.build());
        let prog = Arc::new(LutProgram::compile(Arc::clone(&net)));
        let mut ex = LutExec::new(prog);
        ex.override_gate(g, Box::new(ToggleHigh { phase: false }));
        ex.set_active_lanes(3);
        ex.set_input_lanes(a, 0);
        ex.exec();
        // phase toggles per active lane: lanes 0,1,2 see true,false,true.
        assert_eq!(ex.lanes(g) & 0b111, 0b101);
    }

    #[test]
    #[should_panic(expected = "is not a gate")]
    fn patching_input_panics() {
        let mut b = NetlistBuilder::new();
        let a = b.input("a");
        let g = b.gate(GateKind::Not, &[a]);
        b.output("y", g);
        let net = Arc::new(b.build());
        let mut ex = LutExec::new(Arc::new(LutProgram::compile(Arc::clone(&net))));
        ex.patch_gate(a, 0);
    }
}
