//! Bit-parallel netlist evaluation: 64 independent input vectors per
//! pass.
//!
//! Every net carries a `u64` whose bit `l` is the net's value in lane
//! `l`, so one sweep over the topological order evaluates 64 circuit
//! instances — a ~40× speedup for exhaustive sweeps like the Figure 5
//! distributions or the defect-visibility analysis.
//!
//! Gate overrides use [`Behavior64`]; **stateless** faults (the
//! gate-level stuck-at model) vectorize exactly ([`crate::StuckSet`]
//! implements the trait). Transistor-level faulty cells with memory
//! effects are *sequence-dependent* and must stay on the scalar
//! [`crate::Simulator`], which is why both engines exist.

use std::sync::Arc;

use crate::gate::GateKind;
use crate::netlist::{Netlist, Node, NodeId};
use crate::sim::{full_settle_forced, SettleMode, MAX_ARITY};
use crate::stuck::{StuckPort, StuckSet};

/// Vectorized replacement behavior for a gate: every input and the
/// output are 64-lane bit vectors.
pub trait Behavior64: std::fmt::Debug + Send {
    /// Computes the 64-lane output for 64-lane inputs.
    fn eval64(&mut self, inputs: &[u64]) -> u64;

    /// Clears any internal state.
    fn reset(&mut self) {}
}

impl Behavior64 for StuckSet {
    fn eval64(&mut self, inputs: &[u64]) -> u64 {
        // Stuck-at faults are lane-uniform and stateless: patch the
        // stuck pins across all lanes, then evaluate vectorized.
        let mut patched: Vec<u64> = inputs.to_vec();
        let mut output_stuck = None;
        for (port, value) in self.faults() {
            match port {
                StuckPort::Output => {
                    if output_stuck.is_none() {
                        output_stuck = Some(value);
                    }
                }
                StuckPort::Input(k) => patched[k] = if value { !0 } else { 0 },
            }
        }
        if let Some(v) = output_stuck {
            return if v { !0 } else { 0 };
        }
        eval_kind64(self.kind(), &patched)
    }
}

/// Vectorized healthy cell function.
pub fn eval_kind64(kind: GateKind, v: &[u64]) -> u64 {
    debug_assert_eq!(v.len(), kind.arity());
    match kind {
        GateKind::Const(b) => {
            if b {
                !0
            } else {
                0
            }
        }
        GateKind::Buf => v[0],
        GateKind::Not => !v[0],
        GateKind::And2 => v[0] & v[1],
        GateKind::Or2 => v[0] | v[1],
        GateKind::Nand2 => !(v[0] & v[1]),
        GateKind::Nor2 => !(v[0] | v[1]),
        GateKind::Nand3 => !(v[0] & v[1] & v[2]),
        GateKind::Nor3 => !(v[0] | v[1] | v[2]),
        GateKind::Xor2 => v[0] ^ v[1],
        GateKind::Xnor2 => !(v[0] ^ v[1]),
        GateKind::Aoi22 => !((v[0] & v[1]) | (v[2] & v[3])),
        GateKind::Oai22 => !((v[0] | v[1]) & (v[2] | v[3])),
        GateKind::Mux2 => (v[0] & v[2]) | (!v[0] & v[1]),
    }
}

/// Lane-wise healthy cell evaluation reading pins straight out of the
/// value array — the hot inner statement of [`Simulator64::settle`].
#[inline(always)]
fn eval_pins64(kind: GateKind, values: &[u64], pins: &[u32]) -> u64 {
    let v = |k: usize| values[pins[k] as usize];
    match kind {
        GateKind::Const(b) => {
            if b {
                !0
            } else {
                0
            }
        }
        GateKind::Buf => v(0),
        GateKind::Not => !v(0),
        GateKind::And2 => v(0) & v(1),
        GateKind::Or2 => v(0) | v(1),
        GateKind::Nand2 => !(v(0) & v(1)),
        GateKind::Nor2 => !(v(0) | v(1)),
        GateKind::Nand3 => !(v(0) & v(1) & v(2)),
        GateKind::Nor3 => !(v(0) | v(1) | v(2)),
        GateKind::Xor2 => v(0) ^ v(1),
        GateKind::Xnor2 => !(v(0) ^ v(1)),
        GateKind::Aoi22 => !((v(0) & v(1)) | (v(2) & v(3))),
        GateKind::Oai22 => !((v(0) | v(1)) & (v(2) | v(3))),
        GateKind::Mux2 => (v(0) & v(2)) | (!v(0) & v(1)),
    }
}

/// The 64-lane evaluation engine; mirrors [`crate::Simulator`] lane-wise.
#[derive(Debug)]
pub struct Simulator64 {
    net: Arc<Netlist>,
    values: Vec<u64>,
    /// Dense per-node override slots — see [`crate::Simulator`].
    overrides: Vec<Option<Box<dyn Behavior64>>>,
    n_overrides: usize,
    mode: SettleMode,
    /// Event-driven bookkeeping, mirroring [`crate::Simulator`]: dirty
    /// flags plus the bounds of the dirty schedule range (empty when
    /// `dirty_lo > dirty_hi`).
    dirty: Vec<bool>,
    dirty_lo: u32,
    dirty_hi: u32,
    n_dirty: u32,
    all_dirty: bool,
    override_sched: Vec<u32>,
}

impl Simulator64 {
    /// Creates a 64-lane simulator; latches start at their init value in
    /// every lane.
    pub fn new(net: Arc<Netlist>) -> Simulator64 {
        let mut values = vec![0u64; net.len()];
        for &l in net.latches() {
            if let Node::Latch { init, .. } = net.node(l) {
                values[l.index()] = if *init { !0 } else { 0 };
            }
        }
        let overrides = std::iter::repeat_with(|| None).take(values.len()).collect();
        let n_sched = net.schedule().0.len();
        let mode = if full_settle_forced() {
            SettleMode::Full
        } else {
            SettleMode::Event
        };
        Simulator64 {
            net,
            values,
            overrides,
            n_overrides: 0,
            mode,
            dirty: vec![false; n_sched],
            dirty_lo: u32::MAX,
            dirty_hi: 0,
            n_dirty: 0,
            all_dirty: true,
            override_sched: Vec::new(),
        }
    }

    /// The shared netlist handle (for identity checks by cone helpers).
    pub(crate) fn netlist_arc(&self) -> &Arc<Netlist> {
        &self.net
    }

    /// The value of one node in one lane.
    #[inline]
    pub(crate) fn lane_bit(&self, node: u32, lane: usize) -> bool {
        (self.values[node as usize] >> lane) & 1 == 1
    }

    /// The full 64-lane word of one node (for cone helpers).
    #[inline]
    pub(crate) fn word(&self, node: u32) -> u64 {
        self.values[node as usize]
    }

    /// The active settle strategy.
    pub fn settle_mode(&self) -> SettleMode {
        self.mode
    }

    /// Switches the settle strategy (see [`crate::Simulator`]).
    pub fn set_settle_mode(&mut self, mode: SettleMode) {
        if mode == SettleMode::Event && self.mode != SettleMode::Event {
            self.all_dirty = true;
        }
        self.mode = mode;
    }

    fn mark_fanout(&mut self, node: u32) {
        for &pos in self.net.fanout_of(node) {
            if !self.dirty[pos as usize] {
                self.dirty[pos as usize] = true;
                self.dirty_lo = self.dirty_lo.min(pos);
                self.dirty_hi = self.dirty_hi.max(pos);
                self.n_dirty += 1;
            }
        }
    }

    fn mark_pos(&mut self, pos: u32) {
        if !self.dirty[pos as usize] {
            self.dirty[pos as usize] = true;
            self.dirty_lo = self.dirty_lo.min(pos);
            self.dirty_hi = self.dirty_hi.max(pos);
            self.n_dirty += 1;
        }
    }

    fn tracking_changes(&self) -> bool {
        self.mode == SettleMode::Event && !self.all_dirty
    }

    /// Drives a primary input with a 64-lane mask (bit `l` = lane `l`).
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a primary input.
    pub fn set_input_lanes(&mut self, id: NodeId, lanes: u64) {
        assert!(
            matches!(self.net.node(id), Node::Input { .. }),
            "{id} is not a primary input"
        );
        if self.values[id.index()] == lanes {
            return;
        }
        self.values[id.index()] = lanes;
        if self.tracking_changes() {
            self.mark_fanout(id.0);
        }
    }

    /// Drives a bus so that lane `l` carries `words[l]` (LSB-first bus).
    /// Fewer than 64 words leave the remaining lanes at zero.
    ///
    /// # Panics
    ///
    /// Panics if more than 64 words are supplied.
    pub fn set_input_words(&mut self, bus: &[NodeId], words: &[u64]) {
        assert!(words.len() <= 64, "at most 64 lanes");
        for (bit, &id) in bus.iter().enumerate() {
            let mut lanes = 0u64;
            for (l, &w) in words.iter().enumerate() {
                lanes |= ((w >> bit) & 1) << l;
            }
            self.set_input_lanes(id, lanes);
        }
    }

    /// Settles the combinational logic across all lanes — event-driven
    /// by default, compiled full sweep in [`SettleMode::Full`].
    pub fn settle(&mut self) {
        match self.mode {
            SettleMode::Full => self.settle_full(),
            SettleMode::Event => self.settle_event(),
        }
    }

    /// Settles with one compiled sweep over every gate, regardless of
    /// the active mode — the oracle for the event-driven path.
    pub fn settle_full(&mut self) {
        let net = Arc::clone(&self.net);
        let (sched, pins) = net.schedule();
        let values = &mut self.values;
        if self.n_overrides == 0 {
            for g in sched {
                let p = &pins[g.in_start as usize..][..g.in_len as usize];
                values[g.out as usize] = eval_pins64(g.kind, values, p);
            }
        } else {
            let overrides = &mut self.overrides;
            for g in sched {
                let p = &pins[g.in_start as usize..][..g.in_len as usize];
                let v = match overrides[g.out as usize].as_mut() {
                    Some(b) => {
                        let mut buf = [0u64; MAX_ARITY];
                        for (k, &i) in p.iter().enumerate() {
                            buf[k] = values[i as usize];
                        }
                        b.eval64(&buf[..p.len()])
                    }
                    None => eval_pins64(g.kind, values, p),
                };
                values[g.out as usize] = v;
            }
        }
        self.all_dirty = false;
        if self.dirty_lo <= self.dirty_hi {
            for pos in self.dirty_lo..=self.dirty_hi {
                self.dirty[pos as usize] = false;
            }
        }
        self.dirty_lo = u32::MAX;
        self.dirty_hi = 0;
        self.n_dirty = 0;
    }

    /// Event-driven settle across all lanes; see [`crate::Simulator`]
    /// (including the adaptive drop to the compiled sweep when ~1/64
    /// of the schedule is already dirty before propagation).
    fn settle_event(&mut self) {
        if self.all_dirty || self.n_dirty as usize * 64 >= self.dirty.len() {
            return self.settle_full();
        }
        let net = Arc::clone(&self.net);
        let (sched, pins) = net.schedule();
        let mut lo = self.dirty_lo;
        let mut hi = self.dirty_hi;
        let ov = &self.override_sched;
        if let (Some(&first), Some(&last)) = (ov.first(), ov.last()) {
            lo = lo.min(first);
            hi = hi.max(last);
        }
        let values = &mut self.values;
        let overrides = &mut self.overrides;
        let dirty = &mut self.dirty;
        let mut next_ov = 0usize;
        let mut pos = lo;
        while pos <= hi {
            let forced = next_ov < ov.len() && ov[next_ov] == pos;
            if forced {
                next_ov += 1;
            }
            if !dirty[pos as usize] && !forced {
                pos += 1;
                continue;
            }
            dirty[pos as usize] = false;
            let g = &sched[pos as usize];
            let p = &pins[g.in_start as usize..][..g.in_len as usize];
            let v = match overrides[g.out as usize].as_mut() {
                Some(b) => {
                    let mut buf = [0u64; MAX_ARITY];
                    for (k, &i) in p.iter().enumerate() {
                        buf[k] = values[i as usize];
                    }
                    b.eval64(&buf[..p.len()])
                }
                None => eval_pins64(g.kind, values, p),
            };
            if v != values[g.out as usize] {
                values[g.out as usize] = v;
                for &t in net.fanout_of(g.out) {
                    if !dirty[t as usize] {
                        dirty[t as usize] = true;
                        hi = hi.max(t);
                    }
                }
            }
            pos += 1;
        }
        self.dirty_lo = u32::MAX;
        self.dirty_hi = 0;
        self.n_dirty = 0;
    }

    /// Latch capture across all lanes.
    pub fn tick(&mut self) {
        let net = Arc::clone(&self.net);
        for &l in net.latches() {
            if let Node::Latch { data, .. } = net.node(l) {
                let v = self.values[data.index()];
                if self.values[l.index()] != v {
                    self.values[l.index()] = v;
                    if self.tracking_changes() {
                        self.mark_fanout(l.0);
                    }
                }
            }
        }
    }

    /// The 64-lane value of a node.
    pub fn lanes(&self, id: NodeId) -> u64 {
        self.values[id.index()]
    }

    /// Reads lane `l` of a bus back as a word (LSB-first).
    pub fn read_word_lane(&self, bus: &[NodeId], lane: usize) -> u64 {
        assert!(lane < 64);
        bus.iter().enumerate().fold(0u64, |acc, (bit, &id)| {
            acc | (((self.values[id.index()] >> lane) & 1) << bit)
        })
    }

    /// Reads every lane of a bus back as words.
    pub fn read_words(&self, bus: &[NodeId], n_lanes: usize) -> Vec<u64> {
        (0..n_lanes).map(|l| self.read_word_lane(bus, l)).collect()
    }

    /// Installs a vectorized gate override (fault injection).
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a gate node.
    pub fn override_gate(&mut self, id: NodeId, behavior: Box<dyn Behavior64>) {
        assert!(
            matches!(self.net.node(id), Node::Gate { .. }),
            "{id} is not a gate"
        );
        let pos = self.net.sched_index(id.0);
        if self.overrides[id.index()].replace(behavior).is_none() {
            self.n_overrides += 1;
            let at = self.override_sched.partition_point(|&p| p < pos);
            self.override_sched.insert(at, pos);
        }
        if self.tracking_changes() {
            self.mark_pos(pos);
        }
    }

    /// Removes an override.
    pub fn clear_override(&mut self, id: NodeId) {
        if self.overrides[id.index()].take().is_some() {
            self.n_overrides -= 1;
            let pos = self.net.sched_index(id.0);
            self.override_sched.retain(|&p| p != pos);
            if self.tracking_changes() {
                self.mark_pos(pos);
            }
        }
    }

    /// Number of installed gate overrides.
    pub fn override_count(&self) -> usize {
        self.n_overrides
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::NetlistBuilder;
    use crate::sim::Simulator;

    fn ripple_adder4() -> (Arc<Netlist>, Vec<NodeId>, Vec<NodeId>, Vec<NodeId>) {
        let mut b = NetlistBuilder::new();
        let a = b.input_bus("a", 4);
        let x = b.input_bus("b", 4);
        let mut carry = b.constant(false);
        let mut sum = Vec::new();
        for i in 0..4 {
            let axb = b.gate(GateKind::Xor2, &[a[i], x[i]]);
            let s = b.gate(GateKind::Xor2, &[axb, carry]);
            let t1 = b.gate(GateKind::And2, &[axb, carry]);
            let t2 = b.gate(GateKind::And2, &[a[i], x[i]]);
            carry = b.gate(GateKind::Or2, &[t1, t2]);
            sum.push(s);
        }
        sum.push(carry);
        b.output_bus("s", &sum);
        (Arc::new(b.build()), a, x, sum)
    }

    #[test]
    fn vectorized_adder_matches_scalar_exhaustively() {
        let (net, a, x, sum) = ripple_adder4();
        let mut v = Simulator64::new(net.clone());
        // All 256 pairs in 4 batches of 64.
        for batch in 0..4u64 {
            let pairs: Vec<(u64, u64)> = (0..64)
                .map(|i| {
                    let idx = batch * 64 + i;
                    (idx / 16, idx % 16)
                })
                .collect();
            v.set_input_words(&a, &pairs.iter().map(|p| p.0).collect::<Vec<_>>());
            v.set_input_words(&x, &pairs.iter().map(|p| p.1).collect::<Vec<_>>());
            v.settle();
            let results = v.read_words(&sum, 64);
            for (l, &(pa, pb)) in pairs.iter().enumerate() {
                assert_eq!(results[l], pa + pb, "{pa}+{pb} in lane {l}");
            }
        }
    }

    #[test]
    fn all_kinds_match_scalar() {
        for kind in GateKind::ALL {
            let n = kind.arity();
            for bits in 0u32..1 << n {
                let scalar: Vec<bool> = (0..n).map(|i| bits >> i & 1 == 1).collect();
                let lanes: Vec<u64> = scalar.iter().map(|&b| if b { !0 } else { 0 }).collect();
                let want = kind.eval(&scalar);
                let got = eval_kind64(kind, &lanes);
                assert_eq!(got, if want { !0u64 } else { 0 }, "{kind} {scalar:?}");
            }
        }
    }

    #[test]
    fn stuck_set_vectorizes() {
        let mut set = StuckSet::new(GateKind::And2);
        set.add(StuckPort::Input(0), true);
        // AND2 with in0 stuck at 1 passes in1 through, per lane.
        let out = set.eval64(&[0b0011, 0b0101]);
        assert_eq!(out & 0b1111, 0b0101);

        let mut set = StuckSet::new(GateKind::Xor2);
        set.add(StuckPort::Output, false);
        assert_eq!(set.eval64(&[!0u64, 0]), 0);
    }

    #[test]
    fn override_applies_per_gate() {
        let (net, a, x, sum) = ripple_adder4();
        // Find an XOR gate and stick its output high in the vector sim.
        let gate = net
            .gates()
            .find(|(_, k)| *k == GateKind::Xor2)
            .map(|(id, _)| id)
            .unwrap();
        let mut set = StuckSet::new(GateKind::Xor2);
        set.add(StuckPort::Output, true);

        let mut v = Simulator64::new(net.clone());
        v.override_gate(gate, Box::new(set.clone()));
        let mut s = Simulator::new(net.clone());
        s.override_gate(gate, Box::new(set));

        for (pa, pb) in [(0u64, 0u64), (3, 5), (15, 15), (9, 6)] {
            v.set_input_words(&a, &[pa]);
            v.set_input_words(&x, &[pb]);
            v.settle();
            s.set_input_word(&a, pa);
            s.set_input_word(&x, pb);
            s.settle();
            assert_eq!(v.read_word_lane(&sum, 0), s.read_word(&sum));
        }
        v.clear_override(gate);
        v.set_input_words(&a, &[7]);
        v.set_input_words(&x, &[8]);
        v.settle();
        assert_eq!(v.read_word_lane(&sum, 0), 15);
    }

    #[test]
    fn latches_hold_lanes() {
        let mut b = NetlistBuilder::new();
        let d = b.input("d");
        let q = b.latch(d, false);
        b.output("q", q);
        let net = Arc::new(b.build());
        let mut v = Simulator64::new(net);
        v.set_input_lanes(d, 0xF0F0);
        v.settle();
        assert_eq!(v.lanes(q), 0, "not captured yet");
        v.tick();
        assert_eq!(v.lanes(q), 0xF0F0);
    }
}
