//! The CMOS standard-cell library and the pluggable gate-behavior trait.

use std::fmt;

/// A combinational cell from the standard-cell library.
///
/// The library is restricted to cells with a direct static-CMOS
/// implementation so that every gate instance can be lowered to a
/// transistor schematic by `dta-transistor` for defect injection.
/// Non-inverting cells (`And2`, `Or2`, `Buf`) are realized as the
/// inverting core followed by an output inverter, exactly like real
/// standard cells; transistor counts below reflect that.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum GateKind {
    /// Constant driver (tie cell).
    Const(bool),
    /// Buffer (two inverters back to back).
    Buf,
    /// Inverter.
    Not,
    /// 2-input AND (NAND2 + INV).
    And2,
    /// 2-input OR (NOR2 + INV).
    Or2,
    /// 2-input NAND.
    Nand2,
    /// 2-input NOR.
    Nor2,
    /// 3-input NAND.
    Nand3,
    /// 3-input NOR.
    Nor3,
    /// 2-input XOR.
    Xor2,
    /// 2-input XNOR.
    Xnor2,
    /// AND-OR-invert: `!((a & b) | (c & d))`.
    Aoi22,
    /// OR-AND-invert: `!((a | b) & (c | d))` — the complex gate of the
    /// paper's Figures 6–9 (there shown before the output inversion).
    Oai22,
    /// 2:1 multiplexer: inputs `(sel, a, b)`, output `if sel { b } else { a }`.
    Mux2,
}

impl GateKind {
    /// Number of input pins.
    pub fn arity(self) -> usize {
        match self {
            GateKind::Const(_) => 0,
            GateKind::Buf | GateKind::Not => 1,
            GateKind::And2
            | GateKind::Or2
            | GateKind::Nand2
            | GateKind::Nor2
            | GateKind::Xor2
            | GateKind::Xnor2 => 2,
            GateKind::Nand3 | GateKind::Nor3 | GateKind::Mux2 => 3,
            GateKind::Aoi22 | GateKind::Oai22 => 4,
        }
    }

    /// Evaluates the healthy cell function.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != self.arity()`.
    pub fn eval(self, inputs: &[bool]) -> bool {
        assert_eq!(
            inputs.len(),
            self.arity(),
            "{self:?} expects {} inputs, got {}",
            self.arity(),
            inputs.len()
        );
        match self {
            GateKind::Const(v) => v,
            GateKind::Buf => inputs[0],
            GateKind::Not => !inputs[0],
            GateKind::And2 => inputs[0] & inputs[1],
            GateKind::Or2 => inputs[0] | inputs[1],
            GateKind::Nand2 => !(inputs[0] & inputs[1]),
            GateKind::Nor2 => !(inputs[0] | inputs[1]),
            GateKind::Nand3 => !(inputs[0] & inputs[1] & inputs[2]),
            GateKind::Nor3 => !(inputs[0] | inputs[1] | inputs[2]),
            GateKind::Xor2 => inputs[0] ^ inputs[1],
            GateKind::Xnor2 => !(inputs[0] ^ inputs[1]),
            GateKind::Aoi22 => !((inputs[0] & inputs[1]) | (inputs[2] & inputs[3])),
            GateKind::Oai22 => !((inputs[0] | inputs[1]) & (inputs[2] | inputs[3])),
            GateKind::Mux2 => {
                if inputs[0] {
                    inputs[2]
                } else {
                    inputs[1]
                }
            }
        }
    }

    /// CMOS transistor count of the cell (static complementary
    /// realization), used by the area/energy cost model and by the
    /// defect-site enumeration.
    pub fn transistor_count(self) -> u32 {
        match self {
            GateKind::Const(_) => 0,
            GateKind::Not => 2,
            GateKind::Buf => 4,
            GateKind::Nand2 | GateKind::Nor2 => 4,
            GateKind::And2 | GateKind::Or2 => 6,
            GateKind::Nand3 | GateKind::Nor3 => 6,
            // Complementary XOR/XNOR with input inverters.
            GateKind::Xor2 | GateKind::Xnor2 => 12,
            GateKind::Aoi22 | GateKind::Oai22 => 8,
            // Sel inverter + 8T inverting-mux core + output inverter.
            GateKind::Mux2 => 12,
        }
    }

    /// All non-constant cells, for exhaustive library tests.
    pub const ALL: [GateKind; 13] = [
        GateKind::Buf,
        GateKind::Not,
        GateKind::And2,
        GateKind::Or2,
        GateKind::Nand2,
        GateKind::Nor2,
        GateKind::Nand3,
        GateKind::Nor3,
        GateKind::Xor2,
        GateKind::Xnor2,
        GateKind::Aoi22,
        GateKind::Oai22,
        GateKind::Mux2,
    ];
}

impl fmt::Display for GateKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GateKind::Const(v) => write!(f, "CONST{}", u8::from(*v)),
            other => write!(f, "{}", format!("{other:?}").to_uppercase()),
        }
    }
}

/// Replacement behavior for a gate instance, used for fault injection.
///
/// Implementations may hold internal state: transistor-level defects can
/// turn a combinational cell into a state element (the "memory effect" of
/// asymmetric N/P networks), so `eval` takes `&mut self` and the engine
/// calls [`GateBehavior::reset`] whenever simulation state must be
/// cleared (e.g. between independent experiment runs).
pub trait GateBehavior: fmt::Debug + Send {
    /// Computes the (possibly faulty) output for this input vector.
    fn eval(&mut self, inputs: &[bool]) -> bool;

    /// Clears any internal state (memory effects, delay pipelines).
    fn reset(&mut self) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arity_matches_eval_expectations() {
        for kind in GateKind::ALL {
            let inputs = vec![false; kind.arity()];
            // must not panic
            let _ = kind.eval(&inputs);
        }
    }

    #[test]
    #[should_panic(expected = "expects")]
    fn wrong_arity_panics() {
        GateKind::Nand2.eval(&[true]);
    }

    #[test]
    fn truth_tables() {
        use GateKind::*;
        assert!(Const(true).eval(&[]));
        assert!(!Const(false).eval(&[]));
        assert!(Not.eval(&[false]));
        assert!(Buf.eval(&[true]));
        assert!(And2.eval(&[true, true]));
        assert!(!And2.eval(&[true, false]));
        assert!(Or2.eval(&[false, true]));
        assert!(!Nor2.eval(&[false, true]));
        assert!(Nand2.eval(&[true, false]));
        assert!(!Nand3.eval(&[true, true, true]));
        assert!(Nor3.eval(&[false, false, false]));
        assert!(Xor2.eval(&[true, false]));
        assert!(!Xor2.eval(&[true, true]));
        assert!(Xnor2.eval(&[true, true]));
        // AOI22: !((a&b)|(c&d))
        assert!(!Aoi22.eval(&[true, true, false, false]));
        assert!(Aoi22.eval(&[true, false, false, true]));
        // OAI22: !((a|b)&(c|d))
        assert!(!Oai22.eval(&[true, false, false, true]));
        assert!(Oai22.eval(&[false, false, true, true]));
        // Mux2: (sel, a, b)
        assert!(!Mux2.eval(&[false, false, true]));
        assert!(Mux2.eval(&[true, false, true]));
    }

    #[test]
    fn nand_nor_duality() {
        for a in [false, true] {
            for b in [false, true] {
                assert_eq!(GateKind::Nand2.eval(&[a, b]), GateKind::Or2.eval(&[!a, !b]));
                assert_eq!(GateKind::Nor2.eval(&[a, b]), GateKind::And2.eval(&[!a, !b]));
            }
        }
    }

    #[test]
    fn complex_gates_match_composition() {
        for bits in 0u8..16 {
            let v = [bits & 1 != 0, bits & 2 != 0, bits & 4 != 0, bits & 8 != 0];
            assert_eq!(
                GateKind::Aoi22.eval(&v),
                !((v[0] && v[1]) || (v[2] && v[3]))
            );
            assert_eq!(
                GateKind::Oai22.eval(&v),
                !((v[0] || v[1]) && (v[2] || v[3]))
            );
        }
    }

    #[test]
    fn transistor_counts_positive_for_real_cells() {
        for kind in GateKind::ALL {
            assert!(kind.transistor_count() >= 2, "{kind} has no transistors");
        }
        assert_eq!(GateKind::Const(true).transistor_count(), 0);
    }

    #[test]
    fn display_nonempty() {
        assert_eq!(GateKind::Nand2.to_string(), "NAND2");
        assert_eq!(GateKind::Const(true).to_string(), "CONST1");
    }
}
