//! Cross-operator fusion of compiled LUT instruction streams.
//!
//! [`crate::LutProgram`] compiles *one* netlist; an accelerator forward
//! pass evaluates many operator instances whose compiled programs the
//! per-operator engines run one at a time, repacking 64-lane words at
//! every operator boundary. [`FuseBuilder`] instead stitches any number
//! of (already fault-patched) instruction streams into a single
//! [`FusedProgram`] over one shared flat register file: a producer's
//! output slots are *bound* directly as a consumer's input slots, so a
//! faulty multiplier feeding a faulty adder costs zero repacking and the
//! whole chain settles in one straight-line sweep.
//!
//! Because a real pipeline interleaves gate-level segments with native
//! word-level arithmetic (healthy operators never enter the stream), the
//! builder supports *stage barriers* ([`FuseBuilder::barrier`]): every
//! instruction appended after a barrier is ranked strictly above every
//! instruction before it, so the rank-sorted stream stays partitioned
//! into contiguous per-stage ranges. The runner executes stage `s`, does
//! its native work, writes the next stage's runtime inputs, and resumes
//! with stage `s + 1` — register slots persist across stages, which is
//! what lets later segments read earlier segments' outputs directly.
//!
//! Like [`crate::LutProgram`], the fused stream is rank-major (stable
//! within a rank), so [`FusedProgram::rank_range`] gives the barrier
//! schedule for rank-partitioned multi-core execution.

use std::sync::Arc;

use crate::compile::{LatchSlot, LutInstr};

/// Sentinel slot index for a register eliminated by the optimizer
/// ([`crate::opt::optimize`]). Bus helpers on [`FusedExec`] skip dead
/// slots on writes; a dead slot must never be read.
pub const DEAD_SLOT: u32 = u32::MAX;

/// A fused, rank-ordered LUT instruction stream over a shared flat
/// register file, produced by [`FuseBuilder::finish`] (and optionally
/// rewritten by [`crate::opt::optimize`]).
#[derive(Debug)]
pub struct FusedProgram {
    instrs: Vec<LutInstr>,
    /// Rank `r` spans `instrs[rank_start[r] as usize..rank_start[r+1] as usize]`.
    rank_start: Vec<u32>,
    /// First rank of each stage; stage `s` spans ranks
    /// `stage_rank_lo[s]..stage_rank_lo[s+1]` (the last stage runs to
    /// `n_ranks`). Entries are clamped and non-decreasing.
    stage_rank_lo: Vec<u32>,
    n_slots: usize,
    latches: Vec<LatchSlot>,
    /// Slots holding a compile-time constant in every lane, materialized
    /// once by the executor and never written by the stream (the
    /// optimizer's constant-register lowering).
    consts: Vec<(u32, bool)>,
}

impl FusedProgram {
    pub(crate) fn from_parts(
        instrs: Vec<LutInstr>,
        rank_start: Vec<u32>,
        stage_rank_lo: Vec<u32>,
        n_slots: usize,
        latches: Vec<LatchSlot>,
        consts: Vec<(u32, bool)>,
    ) -> FusedProgram {
        FusedProgram {
            instrs,
            rank_start,
            stage_rank_lo,
            n_slots,
            latches,
            consts,
        }
    }

    /// The fused instruction stream, in rank-major schedule order.
    pub fn instrs(&self) -> &[LutInstr] {
        &self.instrs
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// True if the program has no instructions.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// Number of register-file slots an executor needs.
    pub fn n_slots(&self) -> usize {
        self.n_slots
    }

    /// Number of topological ranks.
    pub fn n_ranks(&self) -> usize {
        self.rank_start.len() - 1
    }

    /// The instruction range of one rank.
    pub fn rank_range(&self, rank: usize) -> std::ops::Range<usize> {
        self.rank_start[rank] as usize..self.rank_start[rank + 1] as usize
    }

    /// Number of stages (1 unless [`FuseBuilder::barrier`] was called).
    pub fn n_stages(&self) -> usize {
        self.stage_rank_lo.len()
    }

    /// The rank range of one stage.
    pub fn stage_rank_range(&self, stage: usize) -> std::ops::Range<usize> {
        let lo = self.stage_rank_lo[stage] as usize;
        let hi = self
            .stage_rank_lo
            .get(stage + 1)
            .map_or(self.n_ranks(), |&r| r as usize);
        lo..hi
    }

    /// The instruction range of one stage.
    pub fn stage_range(&self, stage: usize) -> std::ops::Range<usize> {
        let ranks = self.stage_rank_range(stage);
        self.rank_start[ranks.start] as usize..self.rank_start[ranks.end] as usize
    }

    /// Latch capture list (same semantics as
    /// [`crate::LutProgram::latch_slots`]).
    pub fn latch_slots(&self) -> &[LatchSlot] {
        &self.latches
    }

    /// Constant registers materialized at reset.
    pub fn consts(&self) -> &[(u32, bool)] {
        &self.consts
    }
}

/// Builds a [`FusedProgram`] by appending per-operator instruction
/// streams with explicit slot bindings.
///
/// # Example
///
/// ```
/// use dta_logic::{FuseBuilder, FusedExec, LutInstr};
/// // Two NOT gates chained across segment boundaries: the second
/// // segment's input slot is bound to the first one's output slot.
/// let not = |out, pin| LutInstr { table: 0b01, arity: 1, out, pins: [pin, 0, 0, 0] };
/// let mut fb = FuseBuilder::new();
/// let a = fb.fresh_slot();
/// let m1 = fb.append(&[not(1, 0)], 2, &[], &[(0, a)]);
/// let m2 = fb.append(&[not(1, 0)], 2, &[], &[(0, m1[1])]);
/// let prog = std::sync::Arc::new(fb.finish());
/// let mut ex = FusedExec::new(prog);
/// ex.set_slot(a, 0b1010);
/// ex.exec();
/// assert_eq!(ex.slot(m2[1]), 0b1010);
/// ```
#[derive(Debug, Default)]
pub struct FuseBuilder {
    instrs: Vec<LutInstr>,
    /// Topological rank of each instruction (parallel to `instrs`).
    ranks: Vec<u32>,
    /// Rank of the value currently held by each slot (0 for inputs,
    /// latches and constants).
    slot_rank: Vec<u32>,
    written: Vec<bool>,
    latches: Vec<LatchSlot>,
    /// Minimum rank for instructions appended in the current stage.
    floor: u32,
    /// Floor recorded at the start of each stage (first entry 0).
    stage_floors: Vec<u32>,
    /// Highest rank assigned so far.
    max_rank: u32,
}

impl FuseBuilder {
    /// Creates an empty builder (one stage, no slots).
    pub fn new() -> FuseBuilder {
        FuseBuilder {
            stage_floors: vec![0],
            ..FuseBuilder::default()
        }
    }

    /// Allocates a fresh external-input slot (rank 0, reads as all-zero
    /// lanes until the runner writes it).
    pub fn fresh_slot(&mut self) -> u32 {
        let s = self.slot_rank.len() as u32;
        self.slot_rank.push(0);
        self.written.push(false);
        s
    }

    /// Allocates a bus of fresh external-input slots.
    pub fn fresh_bus(&mut self, width: usize) -> Vec<u32> {
        (0..width).map(|_| self.fresh_slot()).collect()
    }

    /// Number of slots allocated so far.
    pub fn n_slots(&self) -> usize {
        self.slot_rank.len()
    }

    /// Number of instructions appended so far.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// True if no instruction has been appended.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// Starts a new stage: every instruction appended afterwards ranks
    /// strictly above every instruction appended before, so the
    /// rank-sorted stream keeps stages contiguous and the runner can
    /// interleave native work between [`FusedExec::exec_stage`] calls.
    pub fn barrier(&mut self) {
        self.floor = self.max_rank + 1;
        self.stage_floors.push(self.floor);
    }

    /// Appends one compiled (and possibly fault-patched) instruction
    /// stream. `n_slots` is the segment's own register-file size;
    /// `latches` its latch list; `bind` maps segment-local slots
    /// (typically primary-input slots) onto existing fused slots — a
    /// producer's outputs become this consumer's inputs with no
    /// repacking. Unbound local slots get fresh fused slots. Returns the
    /// local→fused slot map, so the caller can locate the segment's
    /// output slots.
    ///
    /// The segment must be in topological (schedule) order, and bound
    /// slots must not be written by the segment.
    ///
    /// # Panics
    ///
    /// Panics if a binding is out of range, if a bound slot is written
    /// by the segment, or if the segment writes one slot twice.
    pub fn append(
        &mut self,
        instrs: &[LutInstr],
        n_slots: usize,
        latches: &[LatchSlot],
        bind: &[(u32, u32)],
    ) -> Vec<u32> {
        let mut map = vec![DEAD_SLOT; n_slots];
        for &(local, fused) in bind {
            assert!((local as usize) < n_slots, "binding past segment slots");
            assert!(
                (fused as usize) < self.slot_rank.len(),
                "binding to unallocated fused slot"
            );
            map[local as usize] = fused;
        }
        // Latch registers are rank-0 state slots; allocate them first so
        // combinational feedback through a latch resolves to rank 0.
        for ls in latches {
            if map[ls.latch as usize] == DEAD_SLOT {
                map[ls.latch as usize] = self.fresh_slot();
            }
        }
        for ins in instrs {
            let mut fused = *ins;
            let mut rank = self.floor;
            for k in 0..ins.arity as usize {
                let local = ins.pins[k] as usize;
                if map[local] == DEAD_SLOT {
                    map[local] = self.fresh_slot();
                }
                let slot = map[local];
                fused.pins[k] = slot;
                rank = rank.max(self.slot_rank[slot as usize] + 1);
            }
            let out = ins.out as usize;
            assert!(
                map[out] == DEAD_SLOT,
                "segment writes a bound or already-written slot"
            );
            let slot = self.fresh_slot();
            map[out] = slot;
            fused.out = slot;
            self.slot_rank[slot as usize] = rank;
            self.written[slot as usize] = true;
            self.max_rank = self.max_rank.max(rank);
            self.instrs.push(fused);
            self.ranks.push(rank);
        }
        for ls in latches {
            let data = ls.data as usize;
            if map[data] == DEAD_SLOT {
                map[data] = self.fresh_slot();
            }
            self.latches.push(LatchSlot {
                latch: map[ls.latch as usize],
                data: map[data],
                init: ls.init,
            });
        }
        map
    }

    /// Finishes the build: buckets the stream by rank (stable within a
    /// rank, like [`crate::LutProgram::compile`]) so per-rank ranges can
    /// execute concurrently, and records the stage windows.
    pub fn finish(self) -> FusedProgram {
        let n_ranks = if self.instrs.is_empty() {
            0
        } else {
            self.max_rank as usize + 1
        };
        let mut counts = vec![0u32; n_ranks];
        for &r in &self.ranks {
            counts[r as usize] += 1;
        }
        let mut rank_start = Vec::with_capacity(n_ranks + 1);
        let mut acc = 0u32;
        for &c in &counts {
            rank_start.push(acc);
            acc += c;
        }
        rank_start.push(acc);
        let mut cursor = rank_start[..n_ranks].to_vec();
        let mut instrs = vec![
            LutInstr {
                table: 0,
                arity: 0,
                out: 0,
                pins: [0; 4],
            };
            self.instrs.len()
        ];
        for (ins, &r) in self.instrs.iter().zip(&self.ranks) {
            let at = cursor[r as usize];
            cursor[r as usize] += 1;
            instrs[at as usize] = *ins;
        }
        let stage_rank_lo = self
            .stage_floors
            .iter()
            .map(|&f| f.min(n_ranks as u32))
            .collect();
        FusedProgram::from_parts(
            instrs,
            rank_start,
            stage_rank_lo,
            self.slot_rank.len(),
            self.latches,
            Vec::new(),
        )
    }
}

/// Straight-line executor for a [`FusedProgram`]: a flat 64-lane
/// register file with no dispatch, no overrides and no repacking
/// between fused segments. Fault patches are already baked into the
/// fused truth words, so there is nothing left to patch at run time.
#[derive(Debug)]
pub struct FusedExec {
    prog: Arc<FusedProgram>,
    regs: Vec<u64>,
    /// Scratch for two-phase latch capture (no per-tick allocation).
    tick_buf: Vec<u64>,
}

impl FusedExec {
    /// Creates an executor: all slots zero, constant registers
    /// materialized, latch slots at their init value in every lane.
    pub fn new(prog: Arc<FusedProgram>) -> FusedExec {
        let mut ex = FusedExec {
            regs: vec![0u64; prog.n_slots()],
            tick_buf: Vec::with_capacity(prog.latch_slots().len()),
            prog,
        };
        ex.reset_state();
        ex
    }

    /// The fused program this executor runs.
    pub fn program(&self) -> &Arc<FusedProgram> {
        &self.prog
    }

    /// Executes the whole stream once, settling all lanes.
    pub fn exec(&mut self) {
        for ins in self.prog.instrs() {
            let v = ins.eval(&self.regs);
            self.regs[ins.out as usize] = v;
        }
    }

    /// Executes one stage's instruction range; earlier stages' results
    /// stay in the register file for later stages to read.
    pub fn exec_stage(&mut self, stage: usize) {
        for ins in &self.prog.instrs()[self.prog.stage_range(stage)] {
            let v = ins.eval(&self.regs);
            self.regs[ins.out as usize] = v;
        }
    }

    /// Writes a slot's 64-lane word (bit `l` = lane `l`). Skips
    /// [`DEAD_SLOT`], so optimizer-compacted buses can be driven as-is.
    #[inline]
    pub fn set_slot(&mut self, slot: u32, lanes: u64) {
        if slot != DEAD_SLOT {
            self.regs[slot as usize] = lanes;
        }
    }

    /// Broadcasts one bit across all lanes of a slot (skips
    /// [`DEAD_SLOT`]): the uniform-input lowering for values shared by
    /// every lane, e.g. a weight bit.
    #[inline]
    pub fn set_slot_uniform(&mut self, slot: u32, bit: bool) {
        self.set_slot(slot, if bit { !0 } else { 0 });
    }

    /// Broadcasts a word across all lanes of a bus (LSB-first), skipping
    /// dead slots.
    pub fn set_bus_uniform(&mut self, bus: &[u32], word: u64) {
        for (bit, &slot) in bus.iter().enumerate() {
            self.set_slot_uniform(slot, (word >> bit) & 1 == 1);
        }
    }

    /// Drives a bus so lane `l` carries `words[l]` (LSB-first); fewer
    /// than 64 words leave the remaining lanes at zero. Dead slots are
    /// skipped.
    ///
    /// # Panics
    ///
    /// Panics if more than 64 words are supplied.
    pub fn set_bus_words(&mut self, bus: &[u32], words: &[u64]) {
        assert!(words.len() <= 64, "at most 64 lanes");
        for (bit, &slot) in bus.iter().enumerate() {
            if slot == DEAD_SLOT {
                continue;
            }
            let mut lanes = 0u64;
            for (l, &w) in words.iter().enumerate() {
                lanes |= ((w >> bit) & 1) << l;
            }
            self.regs[slot as usize] = lanes;
        }
    }

    /// A slot's 64-lane word.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is [`DEAD_SLOT`].
    #[inline]
    pub fn slot(&self, slot: u32) -> u64 {
        self.regs[slot as usize]
    }

    /// Reads lane `lane` of a bus back as a word (LSB-first).
    ///
    /// # Panics
    ///
    /// Panics if the bus contains a dead slot (outputs are never
    /// eliminated) or `lane >= 64`.
    pub fn read_word_lane(&self, bus: &[u32], lane: usize) -> u64 {
        assert!(lane < 64);
        bus.iter().enumerate().fold(0u64, |acc, (bit, &slot)| {
            acc | (((self.regs[slot as usize] >> lane) & 1) << bit)
        })
    }

    /// Reads the first `n_lanes` lanes of a bus back as words.
    pub fn read_words(&self, bus: &[u32], n_lanes: usize) -> Vec<u64> {
        (0..n_lanes).map(|l| self.read_word_lane(bus, l)).collect()
    }

    /// Latch capture across all lanes. Two-phase (all data words are
    /// sampled before any latch updates): a fused stream can chain one
    /// segment's latch output into another segment's latch data, and
    /// per-operator composition samples every operator's inputs before
    /// any operator ticks — simultaneous capture preserves that.
    pub fn tick(&mut self) {
        self.tick_buf.clear();
        self.tick_buf.extend(
            self.prog
                .latch_slots()
                .iter()
                .map(|ls| self.regs[ls.data as usize]),
        );
        for (ls, &v) in self.prog.latch_slots().iter().zip(&self.tick_buf) {
            self.regs[ls.latch as usize] = v;
        }
    }

    /// Resets latch slots to their init values and re-materializes
    /// constant registers. Other slots are left untouched.
    pub fn reset_state(&mut self) {
        for &(slot, bit) in self.prog.consts() {
            self.regs[slot as usize] = if bit { !0 } else { 0 };
        }
        for ls in self.prog.latch_slots() {
            self.regs[ls.latch as usize] = if ls.init { !0 } else { 0 };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::LutProgram;
    use crate::gate::GateKind;
    use crate::netlist::NetlistBuilder;

    /// 2-bit adder segment used as a fusion building block.
    fn adder2() -> (Arc<LutProgram>, Vec<u32>, Vec<u32>, Vec<u32>) {
        let mut b = NetlistBuilder::new();
        let a = b.input_bus("a", 2);
        let x = b.input_bus("b", 2);
        let s0 = b.gate(GateKind::Xor2, &[a[0], x[0]]);
        let c0 = b.gate(GateKind::And2, &[a[0], x[0]]);
        let s1x = b.gate(GateKind::Xor2, &[a[1], x[1]]);
        let s1 = b.gate(GateKind::Xor2, &[s1x, c0]);
        let c1a = b.gate(GateKind::And2, &[s1x, c0]);
        let c1b = b.gate(GateKind::And2, &[a[1], x[1]]);
        let c2 = b.gate(GateKind::Or2, &[c1a, c1b]);
        b.output_bus("s", &[s0, s1, c2]);
        let prog = Arc::new(LutProgram::compile(Arc::new(b.build())));
        let au = a.iter().map(|n| n.index() as u32).collect();
        let xu = x.iter().map(|n| n.index() as u32).collect();
        let su = vec![s0.index() as u32, s1.index() as u32, c2.index() as u32];
        (prog, au, xu, su)
    }

    #[test]
    fn fused_chain_matches_composition() {
        // (a + b) + c through two fused adder segments, directly wired.
        let (prog, a_bus, b_bus, s_bus) = adder2();
        let mut fb = FuseBuilder::new();
        let a = fb.fresh_bus(2);
        let b = fb.fresh_bus(2);
        let c = fb.fresh_bus(2);
        let bind1: Vec<(u32, u32)> = a_bus
            .iter()
            .zip(&a)
            .chain(b_bus.iter().zip(&b))
            .map(|(&l, &f)| (l, f))
            .collect();
        let m1 = fb.append(prog.instrs(), prog.n_slots(), &[], &bind1);
        // Second adder: a-input = first sum (low 2 bits), b-input = c.
        let bind2: Vec<(u32, u32)> = a_bus
            .iter()
            .zip(s_bus.iter().map(|&s| m1[s as usize]))
            .chain(b_bus.iter().zip(c.iter().copied()))
            .map(|(&l, f)| (l, f))
            .collect();
        let m2 = fb.append(prog.instrs(), prog.n_slots(), &[], &bind2);
        let sum2: Vec<u32> = s_bus.iter().map(|&s| m2[s as usize]).collect();
        let fused = Arc::new(fb.finish());
        assert_eq!(fused.n_stages(), 1);

        let mut ex = FusedExec::new(fused);
        let rows: Vec<(u64, u64, u64)> = (0..64)
            .map(|i| (i % 4, (i / 4) % 4, (i / 16) % 4))
            .collect();
        ex.set_bus_words(&a, &rows.iter().map(|r| r.0).collect::<Vec<_>>());
        ex.set_bus_words(&b, &rows.iter().map(|r| r.1).collect::<Vec<_>>());
        ex.set_bus_words(&c, &rows.iter().map(|r| r.2).collect::<Vec<_>>());
        ex.exec();
        for (l, &(ra, rb, rc)) in rows.iter().enumerate() {
            let want = ((ra + rb) % 4) + rc; // low 2 bits of first sum
            assert_eq!(ex.read_word_lane(&sum2, l), want, "lane {l}");
        }
    }

    #[test]
    fn stages_stay_contiguous_and_persist_registers() {
        let (prog, a_bus, b_bus, s_bus) = adder2();
        let mut fb = FuseBuilder::new();
        let a = fb.fresh_bus(2);
        let b = fb.fresh_bus(2);
        let bind1: Vec<(u32, u32)> = a_bus
            .iter()
            .zip(&a)
            .chain(b_bus.iter().zip(&b))
            .map(|(&l, &f)| (l, f))
            .collect();
        let m1 = fb.append(prog.instrs(), prog.n_slots(), &[], &bind1);
        fb.barrier();
        // Stage 1 segment reads a *runtime* input written between the
        // stages, plus stage 0's fused output.
        let c = fb.fresh_bus(2);
        let bind2: Vec<(u32, u32)> = a_bus
            .iter()
            .zip(s_bus.iter().map(|&s| m1[s as usize]))
            .chain(b_bus.iter().zip(c.iter().copied()))
            .map(|(&l, f)| (l, f))
            .collect();
        let m2 = fb.append(prog.instrs(), prog.n_slots(), &[], &bind2);
        let sum1: Vec<u32> = s_bus.iter().map(|&s| m1[s as usize]).collect();
        let sum2: Vec<u32> = s_bus.iter().map(|&s| m2[s as usize]).collect();
        let fused = Arc::new(fb.finish());
        assert_eq!(fused.n_stages(), 2);
        let (r0, r1) = (fused.stage_range(0), fused.stage_range(1));
        assert_eq!(r0.end, r1.start, "stages partition the stream");
        assert_eq!(r1.end, fused.len());
        assert!(!r0.is_empty() && !r1.is_empty());

        let mut ex = FusedExec::new(fused);
        ex.set_bus_words(&a, &[3]);
        ex.set_bus_words(&b, &[2]);
        ex.exec_stage(0);
        let first = ex.read_word_lane(&sum1, 0);
        assert_eq!(first, 5);
        // Native interleave: the runner derives stage 1's extra input
        // from stage 0's result.
        ex.set_bus_words(&c, &[first & 0x3]);
        ex.exec_stage(1);
        assert_eq!(ex.read_word_lane(&sum2, 0), (5 % 4) + (5 % 4));
    }

    #[test]
    fn latched_segments_tick_like_lut_exec() {
        let mut b = NetlistBuilder::new();
        let d = b.input("d");
        let q = b.latch(d, true);
        let g = b.gate(GateKind::Xor2, &[q, d]);
        b.output("y", g);
        let net = Arc::new(b.build());
        let prog = Arc::new(LutProgram::compile(Arc::clone(&net)));

        let mut fb = FuseBuilder::new();
        let din = fb.fresh_slot();
        let map = fb.append(
            prog.instrs(),
            prog.n_slots(),
            prog.latch_slots(),
            &[(d.index() as u32, din)],
        );
        let y = map[g.index()];
        let fused = Arc::new(fb.finish());
        assert_eq!(fused.latch_slots().len(), 1);
        let mut fx = FusedExec::new(fused);

        let mut lx = crate::LutExec::new(prog);
        for step in 0..6u64 {
            let lanes = 0x5A5A ^ (step * 0x1111);
            fx.set_slot(din, lanes);
            lx.set_input_lanes(d, lanes);
            fx.exec();
            lx.exec();
            assert_eq!(fx.slot(y), lx.lanes(g), "step {step}");
            fx.tick();
            lx.tick();
        }
        fx.reset_state();
        lx.reset_state();
        fx.set_slot(din, 0);
        lx.set_input_lanes(d, 0);
        fx.exec();
        lx.exec();
        assert_eq!(fx.slot(y), lx.lanes(g), "after reset");
    }

    #[test]
    fn uniform_bus_broadcasts_every_lane() {
        let mut fb = FuseBuilder::new();
        let bus = fb.fresh_bus(4);
        let prog = Arc::new(fb.finish());
        let mut ex = FusedExec::new(prog);
        ex.set_bus_uniform(&bus, 0b1010);
        for lane in [0usize, 17, 63] {
            assert_eq!(ex.read_word_lane(&bus, lane), 0b1010);
        }
    }

    #[test]
    #[should_panic(expected = "bound or already-written")]
    fn writing_a_bound_slot_panics() {
        let mut fb = FuseBuilder::new();
        let a = fb.fresh_slot();
        let not = LutInstr {
            table: 0b01,
            arity: 1,
            out: 0,
            pins: [0, 0, 0, 0],
        };
        // Local slot 0 is both bound and written by the segment.
        fb.append(&[not], 1, &[], &[(0, a)]);
    }
}
