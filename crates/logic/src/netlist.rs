//! Immutable netlist structure and its builder.

use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, Mutex, OnceLock};

use crate::gate::GateKind;

/// Handle to a node (input, gate, or latch) inside a [`Netlist`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// Index of this node in the netlist's node-storage order.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A netlist node.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Node {
    /// Primary input, driven by [`crate::Simulator::set_input`].
    Input {
        /// Port name.
        name: String,
    },
    /// Combinational cell instance.
    Gate {
        /// Cell type.
        kind: GateKind,
        /// Driver of each input pin, in pin order.
        inputs: Vec<NodeId>,
    },
    /// Level-insensitive storage element: on [`crate::Simulator::tick`]
    /// it captures the settled value of `data`; between ticks it drives
    /// its stored value.
    Latch {
        /// Data input.
        data: NodeId,
        /// Power-on value.
        init: bool,
    },
}

/// Error raised when a netlist fails validation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NetlistError {
    /// A gate references a node id that does not exist.
    DanglingReference {
        /// The offending gate.
        gate: NodeId,
        /// The missing driver.
        missing: NodeId,
    },
    /// A gate has the wrong number of input pins.
    ArityMismatch {
        /// The offending gate.
        gate: NodeId,
        /// Its cell type.
        kind: GateKind,
        /// Number of connections provided.
        got: usize,
    },
    /// The combinational part (latches excluded) contains a cycle.
    CombinationalCycle {
        /// A node on the cycle.
        on: NodeId,
    },
    /// Two outputs were declared with the same name.
    DuplicateOutput {
        /// The duplicated name.
        name: String,
    },
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::DanglingReference { gate, missing } => {
                write!(f, "gate {gate} references missing node {missing}")
            }
            NetlistError::ArityMismatch { gate, kind, got } => write!(
                f,
                "gate {gate} of kind {kind} expects {} inputs, got {got}",
                kind.arity()
            ),
            NetlistError::CombinationalCycle { on } => {
                write!(f, "combinational cycle through node {on}")
            }
            NetlistError::DuplicateOutput { name } => {
                write!(f, "output `{name}` declared twice")
            }
        }
    }
}

impl std::error::Error for NetlistError {}

/// One gate in the compiled evaluation schedule: the cell type, the
/// output slot, and a window into the flat pin array. Everything the
/// settle loop needs sits in 12 contiguous bytes, so a sweep touches no
/// `Node` enums and chases no per-gate `Vec`s.
#[derive(Clone, Copy, Debug)]
pub(crate) struct SchedGate {
    /// Cell type.
    pub(crate) kind: GateKind,
    /// Output slot (= the gate's node index).
    pub(crate) out: u32,
    /// First pin in the netlist's flat pin array.
    pub(crate) in_start: u32,
    /// Number of pins (= the cell arity, at most 4).
    pub(crate) in_len: u8,
}

/// An immutable, validated gate-level netlist.
///
/// Construct with [`NetlistBuilder`]. Combinational nodes are stored in a
/// topological order so a single forward sweep settles the circuit.
#[derive(Clone, Debug)]
pub struct Netlist {
    pub(crate) nodes: Vec<Node>,
    pub(crate) inputs: Vec<NodeId>,
    pub(crate) outputs: Vec<(String, NodeId)>,
    pub(crate) order: Vec<NodeId>,
    pub(crate) latches: Vec<NodeId>,
    /// Gates of `order`, compiled to a flat schedule at build time.
    sched: Vec<SchedGate>,
    /// Flat pin (driver-index) array referenced by `sched`.
    sched_pins: Vec<u32>,
    /// Node index → position of that gate in `sched` (`u32::MAX` for
    /// inputs and latches), for event-driven dirty marking.
    node_sched: Vec<u32>,
    /// CSR fan-out: the consumers of node `n` are the schedule positions
    /// `fanout_gates[fanout_start[n]..fanout_start[n+1]]`.
    fanout_start: Vec<u32>,
    fanout_gates: Vec<u32>,
    input_index: HashMap<String, NodeId>,
    output_index: HashMap<String, NodeId>,
}

impl Netlist {
    /// Number of nodes of any kind.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the netlist has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The node structure behind an id.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Primary inputs, in declaration order.
    pub fn inputs(&self) -> &[NodeId] {
        &self.inputs
    }

    /// Named outputs, in declaration order.
    pub fn outputs(&self) -> &[(String, NodeId)] {
        &self.outputs
    }

    /// Latch nodes, in declaration order.
    pub fn latches(&self) -> &[NodeId] {
        &self.latches
    }

    /// Looks up a primary input by name.
    pub fn input(&self, name: &str) -> Option<NodeId> {
        self.input_index.get(name).copied()
    }

    /// Looks up an output by name.
    pub fn output(&self, name: &str) -> Option<NodeId> {
        self.output_index.get(name).copied()
    }

    /// Iterates over gate instances as `(id, kind)`.
    pub fn gates(&self) -> impl Iterator<Item = (NodeId, GateKind)> + '_ {
        self.nodes.iter().enumerate().filter_map(|(i, n)| match n {
            Node::Gate { kind, .. } => Some((NodeId(i as u32), *kind)),
            _ => None,
        })
    }

    /// Number of gate instances.
    pub fn gate_count(&self) -> usize {
        self.gates().count()
    }

    /// Total CMOS transistor count: gates plus 8 transistors per latch
    /// (transmission-gate D-latch).
    pub fn transistor_count(&self) -> u64 {
        let gate_t: u64 = self.gates().map(|(_, k)| k.transistor_count() as u64).sum();
        gate_t + 8 * self.latches.len() as u64
    }

    /// The compiled gate schedule and its flat pin array, for the settle
    /// loops of both simulation engines.
    pub(crate) fn schedule(&self) -> (&[SchedGate], &[u32]) {
        (&self.sched, &self.sched_pins)
    }

    /// Schedule positions of the gates reading node `node` — the edges an
    /// event-driven settle follows when the node's value changes.
    pub(crate) fn fanout_of(&self, node: u32) -> &[u32] {
        let lo = self.fanout_start[node as usize] as usize;
        let hi = self.fanout_start[node as usize + 1] as usize;
        &self.fanout_gates[lo..hi]
    }

    /// Schedule position of a gate node (`u32::MAX` for non-gates).
    pub(crate) fn sched_index(&self, node: u32) -> u32 {
        self.node_sched[node as usize]
    }

    /// The union fan-out cone of a set of gates: every schedule position
    /// whose value can differ from the healthy circuit when (only) the
    /// seed gates misbehave, plus a per-node membership bitmap. The cone
    /// is closed across sequential elements: a latch whose data input is
    /// in the cone joins the cone (its stored value can diverge after a
    /// tick) and its fan-out is followed in turn, so sequential netlists
    /// prune correctly too. Latches contribute to the membership bitmap
    /// but not to the returned schedule positions (they hold state, they
    /// are not evaluated by a settle).
    pub fn fanout_cone(&self, seeds: &[NodeId]) -> (Vec<u32>, Vec<bool>) {
        // Reverse latch-data edges (data node index → latch indices),
        // so the walk can cross storage elements. Latches are few.
        let mut latch_of_data: HashMap<u32, Vec<u32>> = HashMap::new();
        for &l in &self.latches {
            if let Node::Latch { data, .. } = self.node(l) {
                latch_of_data.entry(data.0).or_default().push(l.0);
            }
        }
        let mut in_cone = vec![false; self.nodes.len()];
        let mut cone_sched: Vec<u32> = Vec::new();
        let mut stack: Vec<u32> = Vec::new();
        for &s in seeds {
            let pos = self.sched_index(s.0);
            assert!(pos != u32::MAX, "{s} is not a gate");
            if !in_cone[s.index()] {
                in_cone[s.index()] = true;
                cone_sched.push(pos);
                stack.push(s.0);
            }
        }
        while let Some(n) = stack.pop() {
            for &pos in self.fanout_of(n) {
                let out = self.sched[pos as usize].out;
                if !in_cone[out as usize] {
                    in_cone[out as usize] = true;
                    cone_sched.push(pos);
                    stack.push(out);
                }
            }
            if let Some(latches) = latch_of_data.get(&n) {
                for &l in latches {
                    if !in_cone[l as usize] {
                        in_cone[l as usize] = true;
                        stack.push(l);
                    }
                }
            }
        }
        cone_sched.sort_unstable();
        (cone_sched, in_cone)
    }

    /// Computes (or returns the process-wide memoized) [`ConeClosure`]
    /// for a seed set — the shareable part of a cone plan. Keyed by
    /// (netlist identity, sorted seed set), so campaign cells that hit
    /// the same operator at the same defect sites reuse the closure
    /// instead of re-walking the fan-out. The cache pins each netlist
    /// `Arc` so pointer keys can never alias.
    pub fn cone_closure(self: &Arc<Netlist>, seeds: &[NodeId]) -> Arc<ConeClosure> {
        static CACHE: OnceLock<ConeCache> = OnceLock::new();
        let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
        let mut key: Vec<u32> = seeds.iter().map(|s| s.0).collect();
        key.sort_unstable();
        key.dedup();
        let key = (Arc::as_ptr(self) as usize, key);
        let mut map = cache.lock().expect("cone closure cache poisoned");
        if let Some((_, closure)) = map.get(&key) {
            return Arc::clone(closure);
        }
        let closure = Arc::new(ConeClosure::build(self, seeds));
        map.insert(key, (Arc::clone(self), Arc::clone(&closure)));
        closure
    }

    /// Counts gate instances per cell type — the structural summary the
    /// cost model and experiment reports print.
    pub fn kind_histogram(&self) -> Vec<(GateKind, usize)> {
        let mut hist: Vec<(GateKind, usize)> = Vec::new();
        for (_, kind) in self.gates() {
            match hist.iter_mut().find(|(k, _)| *k == kind) {
                Some((_, n)) => *n += 1,
                None => hist.push((kind, 1)),
            }
        }
        hist.sort_by_key(|&(_, n)| std::cmp::Reverse(n));
        hist
    }

    /// Renders the netlist as a Graphviz `dot` digraph (inputs as boxes,
    /// gates as ellipses labelled with their cell type, latches as
    /// diamonds; named outputs double-circled) — handy for inspecting
    /// small circuits and for documentation figures.
    pub fn to_dot(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("digraph netlist {\n  rankdir=LR;\n");
        for (i, node) in self.nodes.iter().enumerate() {
            let id = NodeId(i as u32);
            match node {
                Node::Input { name } => {
                    let _ = writeln!(out, "  {id} [shape=box label=\"{name}\"];");
                }
                Node::Gate { kind, .. } => {
                    let _ = writeln!(out, "  {id} [label=\"{kind}\"];");
                }
                Node::Latch { .. } => {
                    let _ = writeln!(out, "  {id} [shape=diamond label=\"LATCH\"];");
                }
            }
        }
        for (i, node) in self.nodes.iter().enumerate() {
            let id = NodeId(i as u32);
            match node {
                Node::Gate { inputs, .. } => {
                    for inp in inputs {
                        let _ = writeln!(out, "  {inp} -> {id};");
                    }
                }
                Node::Latch { data, .. } => {
                    let _ = writeln!(out, "  {data} -> {id} [style=dashed];");
                }
                Node::Input { .. } => {}
            }
        }
        for (name, id) in &self.outputs {
            let _ = writeln!(
                out,
                "  \"out_{name}\" [shape=doublecircle label=\"{name}\"];\n  {id} -> \"out_{name}\";"
            );
        }
        out.push_str("}\n");
        out
    }

    /// Length (in gates) of the longest combinational path — the
    /// critical-path depth used by the latency model. Inputs, latches
    /// and constants contribute depth 0.
    pub fn logic_depth(&self) -> usize {
        let mut depth = vec![0usize; self.nodes.len()];
        let mut max = 0;
        for &id in &self.order {
            if let Node::Gate { kind, inputs } = self.node(id) {
                if matches!(kind, GateKind::Const(_)) {
                    continue;
                }
                let d = 1 + inputs.iter().map(|i| depth[i.index()]).max().unwrap_or(0);
                depth[id.index()] = d;
                max = max.max(d);
            }
        }
        max
    }
}

type ConeCache = Mutex<HashMap<(usize, Vec<u32>), (Arc<Netlist>, Arc<ConeClosure>)>>;

/// The immutable, shareable part of a fan-out-cone plan: the in-cone
/// schedule positions, the membership bitmap, a dense slot assignment
/// for cone scratch values, and the in-cone latches (declaration order).
/// Built once per (netlist, seed set) and shared by every simulator
/// pruning around the same defect sites — see [`Netlist::cone_closure`].
#[derive(Debug)]
pub struct ConeClosure {
    /// Schedule positions inside the cone, ascending (topological).
    pub(crate) sched: Vec<u32>,
    /// Node-index membership bitmap (gates *and* latches).
    pub(crate) in_cone: Vec<bool>,
    /// Node index → dense scratch slot (`u32::MAX` outside the cone).
    pub(crate) slot: Vec<u32>,
    /// Number of dense scratch slots.
    pub(crate) n_slots: u32,
    /// In-cone latches as `(latch, data, init)` node indices, in
    /// declaration order (the order scalar `tick` captures in).
    pub(crate) latches: Vec<(u32, u32, bool)>,
    /// True when an in-cone latch's data input is an out-of-cone latch.
    /// Tick semantics are declaration-order in-place, so the mid-tick
    /// value of such a boundary latch is not recoverable from a settled
    /// healthy twin; cone pruning refuses these (rare) netlists.
    pub(crate) boundary_chain: bool,
}

impl ConeClosure {
    fn build(net: &Netlist, seeds: &[NodeId]) -> ConeClosure {
        let (sched, in_cone) = net.fanout_cone(seeds);
        let mut slot = vec![u32::MAX; in_cone.len()];
        let mut n_slots = 0u32;
        for (i, &m) in in_cone.iter().enumerate() {
            if m {
                slot[i] = n_slots;
                n_slots += 1;
            }
        }
        let mut latches = Vec::new();
        let mut boundary_chain = false;
        for &l in net.latches() {
            if !in_cone[l.index()] {
                continue;
            }
            if let Node::Latch { data, init } = net.node(l) {
                if !in_cone[data.index()] && matches!(net.node(*data), Node::Latch { .. }) {
                    boundary_chain = true;
                }
                latches.push((l.0, data.0, *init));
            }
        }
        ConeClosure {
            sched,
            in_cone,
            slot,
            n_slots,
            latches,
            boundary_chain,
        }
    }

    /// Number of gates in the cone.
    pub fn len(&self) -> usize {
        self.sched.len()
    }

    /// True when the cone contains no gates.
    pub fn is_empty(&self) -> bool {
        self.sched.is_empty()
    }

    /// True when a node is inside the cone.
    pub fn contains(&self, id: NodeId) -> bool {
        self.in_cone[id.index()]
    }
}

/// Incremental builder for [`Netlist`].
///
/// # Example
///
/// ```
/// use dta_logic::{GateKind, NetlistBuilder};
/// let mut b = NetlistBuilder::new();
/// let x = b.input("x");
/// let y = b.gate(GateKind::Not, &[x]);
/// b.output("y", y);
/// let net = b.build();
/// assert_eq!(net.gate_count(), 1);
/// ```
#[derive(Debug, Default)]
pub struct NetlistBuilder {
    nodes: Vec<Node>,
    inputs: Vec<NodeId>,
    outputs: Vec<(String, NodeId)>,
    latches: Vec<NodeId>,
}

impl NetlistBuilder {
    /// Creates an empty builder.
    pub fn new() -> NetlistBuilder {
        NetlistBuilder::default()
    }

    fn push(&mut self, node: Node) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(node);
        id
    }

    /// Declares a primary input.
    pub fn input(&mut self, name: impl Into<String>) -> NodeId {
        let id = self.push(Node::Input { name: name.into() });
        self.inputs.push(id);
        id
    }

    /// Declares a bus of primary inputs named `name[0]..name[width-1]`,
    /// LSB first.
    pub fn input_bus(&mut self, name: &str, width: usize) -> Vec<NodeId> {
        (0..width)
            .map(|i| self.input(format!("{name}[{i}]")))
            .collect()
    }

    /// Instantiates a gate.
    pub fn gate(&mut self, kind: GateKind, inputs: &[NodeId]) -> NodeId {
        self.push(Node::Gate {
            kind,
            inputs: inputs.to_vec(),
        })
    }

    /// Instantiates a constant driver.
    pub fn constant(&mut self, value: bool) -> NodeId {
        self.gate(GateKind::Const(value), &[])
    }

    /// Instantiates a latch capturing `data` on each tick.
    pub fn latch(&mut self, data: NodeId, init: bool) -> NodeId {
        let id = self.push(Node::Latch { data, init });
        self.latches.push(id);
        id
    }

    /// Names an output.
    pub fn output(&mut self, name: impl Into<String>, node: NodeId) {
        self.outputs.push((name.into(), node));
    }

    /// Names a bus of outputs `name[0]..`, LSB first.
    pub fn output_bus(&mut self, name: &str, nodes: &[NodeId]) {
        for (i, &n) in nodes.iter().enumerate() {
            self.output(format!("{name}[{i}]"), n);
        }
    }

    /// Validates and freezes the netlist.
    ///
    /// # Errors
    ///
    /// Returns a [`NetlistError`] if a gate references a missing node or
    /// has the wrong arity, if the combinational part is cyclic, or if an
    /// output name is duplicated.
    pub fn try_build(self) -> Result<Netlist, NetlistError> {
        let n = self.nodes.len();
        // Validate references and arities.
        for (i, node) in self.nodes.iter().enumerate() {
            let id = NodeId(i as u32);
            match node {
                Node::Gate { kind, inputs } => {
                    if inputs.len() != kind.arity() {
                        return Err(NetlistError::ArityMismatch {
                            gate: id,
                            kind: *kind,
                            got: inputs.len(),
                        });
                    }
                    for &inp in inputs {
                        if inp.index() >= n {
                            return Err(NetlistError::DanglingReference {
                                gate: id,
                                missing: inp,
                            });
                        }
                    }
                }
                Node::Latch { data, .. } => {
                    if data.index() >= n {
                        return Err(NetlistError::DanglingReference {
                            gate: id,
                            missing: *data,
                        });
                    }
                }
                Node::Input { .. } => {}
            }
        }

        // Kahn topological sort over combinational edges. Latch outputs are
        // sources (their stored value is available before settling); the
        // latch data input is *not* a combinational dependency.
        let mut indegree = vec![0usize; n];
        let mut fanout: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (i, node) in self.nodes.iter().enumerate() {
            if let Node::Gate { inputs, .. } = node {
                indegree[i] = inputs.len();
                for &inp in inputs {
                    fanout[inp.index()].push(i as u32);
                }
            }
        }
        let mut queue: Vec<u32> = (0..n as u32)
            .filter(|&i| indegree[i as usize] == 0)
            .collect();
        let mut order = Vec::with_capacity(n);
        let mut head = 0;
        while head < queue.len() {
            let v = queue[head];
            head += 1;
            order.push(NodeId(v));
            for &w in &fanout[v as usize] {
                indegree[w as usize] -= 1;
                if indegree[w as usize] == 0 {
                    queue.push(w);
                }
            }
        }
        if order.len() != n {
            let on = (0..n)
                .find(|&i| indegree[i] > 0)
                .map(|i| NodeId(i as u32))
                .expect("cycle implies a node with nonzero indegree");
            return Err(NetlistError::CombinationalCycle { on });
        }

        // Compile the gate schedule: the gates of `order`, with their
        // pins flattened into one contiguous array.
        let mut sched = Vec::new();
        let mut sched_pins = Vec::new();
        let mut node_sched = vec![u32::MAX; n];
        for &id in &order {
            if let Node::Gate { kind, inputs } = &self.nodes[id.index()] {
                let in_start = sched_pins.len() as u32;
                sched_pins.extend(inputs.iter().map(|n| n.0));
                node_sched[id.index()] = sched.len() as u32;
                sched.push(SchedGate {
                    kind: *kind,
                    out: id.0,
                    in_start,
                    in_len: inputs.len() as u8,
                });
            }
        }

        // Flatten the fan-out lists (consumer gates as schedule
        // positions, CSR layout) for the event-driven settle path.
        let mut fanout_start = Vec::with_capacity(n + 1);
        let mut fanout_gates = Vec::new();
        for consumers in &fanout {
            fanout_start.push(fanout_gates.len() as u32);
            fanout_gates.extend(consumers.iter().map(|&g| node_sched[g as usize]));
        }
        fanout_start.push(fanout_gates.len() as u32);

        let mut input_index = HashMap::new();
        for &id in &self.inputs {
            if let Node::Input { name } = &self.nodes[id.index()] {
                input_index.insert(name.clone(), id);
            }
        }
        let mut output_index = HashMap::new();
        for (name, id) in &self.outputs {
            if output_index.insert(name.clone(), *id).is_some() {
                return Err(NetlistError::DuplicateOutput { name: name.clone() });
            }
        }

        Ok(Netlist {
            nodes: self.nodes,
            inputs: self.inputs,
            outputs: self.outputs,
            order,
            latches: self.latches,
            sched,
            sched_pins,
            node_sched,
            fanout_start,
            fanout_gates,
            input_index,
            output_index,
        })
    }

    /// Validates and freezes the netlist.
    ///
    /// # Panics
    ///
    /// Panics on any validation error; use [`NetlistBuilder::try_build`]
    /// to handle errors.
    pub fn build(self) -> Netlist {
        match self.try_build() {
            Ok(net) => net,
            Err(e) => panic!("invalid netlist: {e}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_lookup() {
        let mut b = NetlistBuilder::new();
        let a = b.input("a");
        let c = b.gate(GateKind::Not, &[a]);
        b.output("c", c);
        let net = b.build();
        assert_eq!(net.input("a"), Some(a));
        assert_eq!(net.output("c"), Some(c));
        assert_eq!(net.input("zz"), None);
        assert_eq!(net.len(), 2);
        assert!(!net.is_empty());
        assert_eq!(net.gate_count(), 1);
    }

    #[test]
    fn buses_are_lsb_first() {
        let mut b = NetlistBuilder::new();
        let bus = b.input_bus("x", 4);
        b.output_bus("y", &bus);
        let net = b.build();
        assert_eq!(net.input("x[0]"), Some(bus[0]));
        assert_eq!(net.input("x[3]"), Some(bus[3]));
        assert_eq!(net.output("y[2]"), Some(bus[2]));
    }

    #[test]
    fn arity_mismatch_detected() {
        let mut b = NetlistBuilder::new();
        let a = b.input("a");
        b.gate(GateKind::Nand2, &[a]);
        assert!(matches!(
            b.try_build(),
            Err(NetlistError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn cycle_detected() {
        let mut b = NetlistBuilder::new();
        let a = b.input("a");
        // g references itself through a forward id: build g with a then
        // rewire is impossible via the API, so create mutual gates by
        // referencing an id that will exist later.
        let g1 = NodeId(2); // will be g2's id... actually reference forward
        let g2 = b.gate(GateKind::And2, &[a, g1]);
        let _g1_real = b.gate(GateKind::Not, &[g2]);
        assert!(matches!(
            b.try_build(),
            Err(NetlistError::CombinationalCycle { .. })
        ));
    }

    #[test]
    fn latch_breaks_cycles() {
        let mut b = NetlistBuilder::new();
        // A toggle: latch feeds an inverter which feeds the latch.
        let l = NodeId(1); // forward reference to the latch
        let inv = b.gate(GateKind::Not, &[l]);
        let l_real = b.latch(inv, false);
        assert_eq!(l_real, l);
        b.output("q", l_real);
        let net = b.try_build().expect("latch must break the cycle");
        assert_eq!(net.latches().len(), 1);
    }

    #[test]
    fn dangling_reference_detected() {
        let mut b = NetlistBuilder::new();
        let a = b.input("a");
        b.gate(GateKind::And2, &[a, NodeId(99)]);
        assert!(matches!(
            b.try_build(),
            Err(NetlistError::DanglingReference { .. })
        ));
    }

    #[test]
    fn duplicate_output_detected() {
        let mut b = NetlistBuilder::new();
        let a = b.input("a");
        b.output("y", a);
        b.output("y", a);
        assert!(matches!(
            b.try_build(),
            Err(NetlistError::DuplicateOutput { .. })
        ));
    }

    #[test]
    fn transistor_count_sums_cells() {
        let mut b = NetlistBuilder::new();
        let a = b.input("a");
        let x = b.gate(GateKind::Not, &[a]); // 2
        let y = b.gate(GateKind::Nand2, &[a, x]); // 4
        b.latch(y, false); // 8
        let net = b.build();
        assert_eq!(net.transistor_count(), 14);
    }

    #[test]
    fn error_display_nonempty() {
        let e = NetlistError::CombinationalCycle { on: NodeId(3) };
        assert!(e.to_string().contains("n3"));
    }

    #[test]
    fn logic_depth_counts_longest_path() {
        let mut b = NetlistBuilder::new();
        let a = b.input("a");
        let x = b.input("x");
        let g1 = b.gate(GateKind::And2, &[a, x]); // depth 1
        let g2 = b.gate(GateKind::Not, &[g1]); // depth 2
        let g3 = b.gate(GateKind::Or2, &[g2, a]); // depth 3
        let _side = b.gate(GateKind::Not, &[a]); // depth 1
        b.output("y", g3);
        let net = b.build();
        assert_eq!(net.logic_depth(), 3);
    }

    #[test]
    fn logic_depth_zero_for_wires_only() {
        let mut b = NetlistBuilder::new();
        let a = b.input("a");
        b.output("y", a);
        assert_eq!(b.build().logic_depth(), 0);
    }

    #[test]
    fn dot_export_mentions_everything() {
        let mut b = NetlistBuilder::new();
        let a = b.input("alpha");
        let g = b.gate(GateKind::Nand2, &[a, a]);
        let l = b.latch(g, false);
        b.output("q", l);
        let dot = b.build().to_dot();
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("alpha"));
        assert!(dot.contains("NAND2"));
        assert!(dot.contains("LATCH"));
        assert!(dot.contains("out_q"));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn kind_histogram_counts() {
        let mut b = NetlistBuilder::new();
        let a = b.input("a");
        let n1 = b.gate(GateKind::Not, &[a]);
        let n2 = b.gate(GateKind::Not, &[n1]);
        let g = b.gate(GateKind::And2, &[n1, n2]);
        b.output("y", g);
        let hist = b.build().kind_histogram();
        assert_eq!(hist[0], (GateKind::Not, 2));
        assert_eq!(hist[1], (GateKind::And2, 1));
    }
}
