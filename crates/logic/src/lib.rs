#![warn(missing_docs)]

//! Gate-level netlist representation and simulation.
//!
//! The accelerator's arithmetic operators (ripple-carry adders, array
//! multipliers, latches, the sigmoid look-up unit) are built in
//! `dta-circuits` as netlists of the CMOS standard-cell library defined
//! here. This crate provides:
//!
//! * [`GateKind`] — the cell library (inverter, NAND/NOR, XOR, AOI/OAI
//!   complex gates, 2:1 mux, constants), each with its CMOS transistor
//!   count for the cost model;
//! * [`Netlist`] / [`NetlistBuilder`] — an immutable combinational +
//!   latch DAG with named input/output buses;
//! * [`Simulator`] — an evaluation engine that settles the combinational
//!   logic in topological order and steps latches on [`Simulator::tick`];
//!   any gate can be overridden with a [`GateBehavior`], which is how both
//!   fault models plug in;
//! * [`stuck`] — the classic **gate-level stuck-at fault model** (inputs
//!   or output of a logic gate stuck at 0/1). The paper uses this model as
//!   the *inaccurate baseline* that transistor-level injection
//!   (`dta-transistor`) is compared against in Figure 5.
//!
//! # Example
//!
//! ```
//! use dta_logic::{GateKind, NetlistBuilder, Simulator};
//!
//! // Build a half adder: sum = a ^ b, carry = a & b.
//! let mut b = NetlistBuilder::new();
//! let a = b.input("a");
//! let bb = b.input("b");
//! let sum = b.gate(GateKind::Xor2, &[a, bb]);
//! let carry = b.gate(GateKind::And2, &[a, bb]);
//! b.output("sum", sum);
//! b.output("carry", carry);
//! let net = std::sync::Arc::new(b.build());
//! let mut sim = Simulator::new(net);
//! sim.set_input(a, true);
//! sim.set_input(bb, true);
//! sim.settle();
//! assert!(!sim.value(sum));
//! assert!(sim.value(carry));
//! ```

pub mod compile;
pub mod exec;
pub mod fuse;
pub mod gate;
pub mod netlist;
pub mod opt;
pub mod sim;
pub mod sim64;
pub mod stuck;

pub use compile::{
    disable_lut_backend, kind_table, lut_backend_disabled, program_cache_stats, LatchSlot,
    LutInstr, LutProgram,
};
pub use exec::LutExec;
pub use fuse::{FuseBuilder, FusedExec, FusedProgram, DEAD_SLOT};
pub use gate::{GateBehavior, GateKind};
pub use netlist::{ConeClosure, Netlist, NetlistBuilder, NetlistError, Node, NodeId};
pub use opt::{optimize, optimize_with_consts, OptStats, SlotMap};
pub use sim::{force_full_settle, full_settle_forced, SettleMode, Simulator};
pub use sim64::{Behavior64, Simulator64};
pub use stuck::{StuckAt, StuckPort, StuckSet};
