//! The classic gate-level stuck-at fault model.
//!
//! This is the abstract model the paper argues is *insufficient*: "the
//! actual behavior of logic blocks resulting from transistor-level defects
//! can often be more complex than stuck-at and delayed inputs of logic
//! gates". It is implemented here as the comparison baseline for the
//! Figure 5 experiment (gate-level vs. transistor-level injection).

use crate::gate::{GateBehavior, GateKind};

/// Which port of the gate is stuck.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum StuckPort {
    /// The gate output is stuck.
    Output,
    /// Input pin `k` is stuck.
    Input(usize),
}

/// A gate whose input or output is stuck at a constant logic value,
/// following Li et al.'s gate-level hardware fault model.
///
/// # Example
///
/// ```
/// use dta_logic::{GateKind, StuckAt, StuckPort};
/// use dta_logic::gate::GateBehavior;
///
/// // NAND2 with input 0 stuck at 1 behaves like an inverter of input 1.
/// let mut g = StuckAt::new(GateKind::Nand2, StuckPort::Input(0), true);
/// assert!(!g.eval(&[false, true]));
/// assert!(g.eval(&[false, false]));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StuckAt {
    kind: GateKind,
    port: StuckPort,
    value: bool,
}

impl StuckAt {
    /// Creates a stuck-at fault on `port` of a gate of type `kind`.
    ///
    /// # Panics
    ///
    /// Panics if `port` names an input pin beyond the gate's arity.
    pub fn new(kind: GateKind, port: StuckPort, value: bool) -> StuckAt {
        if let StuckPort::Input(k) = port {
            assert!(
                k < kind.arity(),
                "{kind:?} has {} inputs, pin {k} does not exist",
                kind.arity()
            );
        }
        StuckAt { kind, port, value }
    }

    /// The healthy cell type.
    pub fn kind(&self) -> GateKind {
        self.kind
    }

    /// The stuck port.
    pub fn port(&self) -> StuckPort {
        self.port
    }

    /// The stuck value.
    pub fn value(&self) -> bool {
        self.value
    }

    /// Enumerates every stuck-at fault site of a cell: each input pin and
    /// the output, stuck at 0 and at 1.
    pub fn sites(kind: GateKind) -> Vec<(StuckPort, bool)> {
        let mut sites = Vec::with_capacity(2 * (kind.arity() + 1));
        for v in [false, true] {
            sites.push((StuckPort::Output, v));
            for k in 0..kind.arity() {
                sites.push((StuckPort::Input(k), v));
            }
        }
        sites
    }
}

impl GateBehavior for StuckAt {
    fn eval(&mut self, inputs: &[bool]) -> bool {
        match self.port {
            StuckPort::Output => self.value,
            StuckPort::Input(k) => {
                let mut patched: Vec<bool> = inputs.to_vec();
                patched[k] = self.value;
                self.kind.eval(&patched)
            }
        }
    }
}

/// Several stuck-at faults accumulated on the *same* gate instance, for
/// multi-defect experiments where two random defects can land on one
/// cell.
///
/// Input faults are patched pin by pin; if any output fault is present,
/// the first one injected wins (a physically shorted output node settles
/// to one value).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StuckSet {
    kind: GateKind,
    input_faults: Vec<(usize, bool)>,
    output_fault: Option<bool>,
}

impl StuckSet {
    /// Creates an empty fault set for a gate of type `kind`.
    pub fn new(kind: GateKind) -> StuckSet {
        StuckSet {
            kind,
            input_faults: Vec::new(),
            output_fault: None,
        }
    }

    /// Adds one stuck-at fault.
    ///
    /// # Panics
    ///
    /// Panics if `port` names an input pin beyond the gate's arity.
    pub fn add(&mut self, port: StuckPort, value: bool) {
        match port {
            StuckPort::Output => {
                if self.output_fault.is_none() {
                    self.output_fault = Some(value);
                }
            }
            StuckPort::Input(k) => {
                assert!(k < self.kind.arity(), "pin {k} out of range");
                self.input_faults.push((k, value));
            }
        }
    }

    /// Number of accumulated faults.
    pub fn len(&self) -> usize {
        self.input_faults.len() + usize::from(self.output_fault.is_some())
    }

    /// True if no fault was added yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The healthy cell type.
    pub fn kind(&self) -> GateKind {
        self.kind
    }

    /// Every accumulated fault: input faults in insertion order, then
    /// the winning output fault (if any).
    pub fn faults(&self) -> Vec<(StuckPort, bool)> {
        let mut v: Vec<(StuckPort, bool)> = self
            .input_faults
            .iter()
            .map(|&(k, val)| (StuckPort::Input(k), val))
            .collect();
        if let Some(val) = self.output_fault {
            v.push((StuckPort::Output, val));
        }
        v
    }
}

impl GateBehavior for StuckSet {
    fn eval(&mut self, inputs: &[bool]) -> bool {
        if let Some(v) = self.output_fault {
            return v;
        }
        let mut patched: Vec<bool> = inputs.to_vec();
        for &(k, v) in &self.input_faults {
            patched[k] = v;
        }
        self.kind.eval(&patched)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stuck_output_ignores_inputs() {
        let mut g = StuckAt::new(GateKind::Xor2, StuckPort::Output, true);
        for bits in 0u8..4 {
            assert!(g.eval(&[bits & 1 != 0, bits & 2 != 0]));
        }
    }

    #[test]
    fn stuck_input_patches_one_pin() {
        // AND2 with input 1 stuck at 0 is constant 0.
        let mut g = StuckAt::new(GateKind::And2, StuckPort::Input(1), false);
        for bits in 0u8..4 {
            assert!(!g.eval(&[bits & 1 != 0, bits & 2 != 0]));
        }
        // OR2 with input 0 stuck at 0 passes input 1 through.
        let mut g = StuckAt::new(GateKind::Or2, StuckPort::Input(0), false);
        assert!(!g.eval(&[true, false]));
        assert!(g.eval(&[true, true]));
    }

    #[test]
    fn site_enumeration_counts() {
        assert_eq!(StuckAt::sites(GateKind::Not).len(), 4); // (in, out) x (0,1)
        assert_eq!(StuckAt::sites(GateKind::Nand2).len(), 6);
        assert_eq!(StuckAt::sites(GateKind::Aoi22).len(), 10);
    }

    #[test]
    #[should_panic(expected = "does not exist")]
    fn bad_pin_rejected() {
        let _ = StuckAt::new(GateKind::Not, StuckPort::Input(1), true);
    }

    #[test]
    fn accessors() {
        let g = StuckAt::new(GateKind::Nor2, StuckPort::Input(0), true);
        assert_eq!(g.kind(), GateKind::Nor2);
        assert_eq!(g.port(), StuckPort::Input(0));
        assert!(g.value());
    }

    #[test]
    fn stuck_set_accumulates_input_faults() {
        let mut g = StuckSet::new(GateKind::Nand2);
        assert!(g.is_empty());
        g.add(StuckPort::Input(0), true);
        g.add(StuckPort::Input(1), true);
        assert_eq!(g.len(), 2);
        // Both inputs stuck at 1: NAND -> constant 0.
        for bits in 0u8..4 {
            assert!(!g.eval(&[bits & 1 != 0, bits & 2 != 0]));
        }
    }

    #[test]
    fn stuck_set_first_output_fault_wins() {
        let mut g = StuckSet::new(GateKind::Xor2);
        g.add(StuckPort::Output, true);
        g.add(StuckPort::Output, false); // ignored: first short wins
        assert_eq!(g.len(), 1);
        assert!(g.eval(&[false, false]));
    }
}
