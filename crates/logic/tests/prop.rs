//! Property tests: random combinational netlists must evaluate
//! identically under the scalar engine, the 64-lane engine, and a
//! direct recursive reference evaluator.

use std::sync::Arc;

use dta_logic::{GateKind, Netlist, NetlistBuilder, Node, NodeId, Simulator, Simulator64};
use proptest::prelude::*;

/// A recipe for one random gate: kind selector and input selectors
/// (resolved modulo the number of available nodes at build time).
#[derive(Clone, Debug)]
struct GateRecipe {
    kind_sel: u8,
    input_sels: [u16; 4],
}

fn kinds() -> [GateKind; 13] {
    GateKind::ALL
}

fn build(n_inputs: usize, recipes: &[GateRecipe]) -> (Arc<Netlist>, Vec<NodeId>, Vec<NodeId>) {
    let mut b = NetlistBuilder::new();
    let inputs = b.input_bus("x", n_inputs);
    let mut pool: Vec<NodeId> = inputs.clone();
    for r in recipes {
        let kind = kinds()[r.kind_sel as usize % kinds().len()];
        let ins: Vec<NodeId> = (0..kind.arity())
            .map(|k| pool[r.input_sels[k] as usize % pool.len()])
            .collect();
        let g = b.gate(kind, &ins);
        pool.push(g);
    }
    let outputs: Vec<NodeId> = pool.iter().rev().take(4).copied().collect();
    b.output_bus("y", &outputs);
    (Arc::new(b.build()), inputs, outputs)
}

/// Reference: recursively evaluate a node from the netlist structure.
fn reference_eval(net: &Netlist, id: NodeId, input_vals: &[(NodeId, bool)]) -> bool {
    match net.node(id) {
        Node::Input { .. } => {
            input_vals
                .iter()
                .find(|(i, _)| *i == id)
                .expect("all inputs driven")
                .1
        }
        Node::Gate { kind, inputs } => {
            let vals: Vec<bool> = inputs
                .iter()
                .map(|&i| reference_eval(net, i, input_vals))
                .collect();
            kind.eval(&vals)
        }
        Node::Latch { .. } => unreachable!("no latches generated"),
    }
}

fn recipe_strategy() -> impl Strategy<Value = GateRecipe> {
    (any::<u8>(), any::<[u16; 4]>()).prop_map(|(kind_sel, input_sels)| GateRecipe {
        kind_sel,
        input_sels,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn engines_agree_on_random_netlists(
        n_inputs in 1usize..6,
        recipes in prop::collection::vec(recipe_strategy(), 1..40),
        stimulus in prop::collection::vec(any::<u8>(), 1..8),
    ) {
        let (net, inputs, outputs) = build(n_inputs, &recipes);
        let mut scalar = Simulator::new(net.clone());
        let mut vector = Simulator64::new(net.clone());

        for word in &stimulus {
            let word = *word as u64;
            scalar.set_input_word(&inputs, word);
            scalar.settle();
            vector.set_input_words(&inputs, &[word]);
            vector.settle();

            let driven: Vec<(NodeId, bool)> = inputs
                .iter()
                .enumerate()
                .map(|(i, &id)| (id, word >> i & 1 == 1))
                .collect();
            for &out in &outputs {
                let want = reference_eval(&net, out, &driven);
                prop_assert_eq!(scalar.value(out), want, "scalar vs reference");
                prop_assert_eq!(
                    vector.lanes(out) & 1 == 1,
                    want,
                    "vector lane 0 vs reference"
                );
            }
        }
    }

    #[test]
    fn vector_lanes_are_independent(
        n_inputs in 1usize..5,
        recipes in prop::collection::vec(recipe_strategy(), 1..25),
        words in prop::collection::vec(any::<u8>(), 2..32),
    ) {
        let (net, inputs, outputs) = build(n_inputs, &recipes);
        let lane_words: Vec<u64> = words.iter().map(|&w| w as u64).collect();
        let mut vector = Simulator64::new(net.clone());
        vector.set_input_words(&inputs, &lane_words);
        vector.settle();

        let mut scalar = Simulator::new(net.clone());
        for (lane, &w) in lane_words.iter().enumerate() {
            scalar.set_input_word(&inputs, w);
            scalar.settle();
            for &out in &outputs {
                prop_assert_eq!(
                    vector.lanes(out) >> lane & 1 == 1,
                    scalar.value(out),
                    "lane {} of {:?}",
                    lane,
                    out
                );
            }
        }
    }

    #[test]
    fn logic_depth_bounded_by_gate_count(
        n_inputs in 1usize..5,
        recipes in prop::collection::vec(recipe_strategy(), 1..40),
    ) {
        let (net, _, _) = build(n_inputs, &recipes);
        prop_assert!(net.logic_depth() <= net.gate_count());
        prop_assert!(net.transistor_count() >= 2 * net.gate_count() as u64);
    }
}
