//! Property tests: random combinational netlists must evaluate
//! identically under the scalar engine, the 64-lane engine, and a
//! direct recursive reference evaluator.

use std::sync::Arc;

use dta_logic::{
    GateBehavior, GateKind, LutExec, LutProgram, Netlist, NetlistBuilder, Node, NodeId, SettleMode,
    Simulator, Simulator64,
};
use proptest::prelude::*;

/// A recipe for one random gate: kind selector and input selectors
/// (resolved modulo the number of available nodes at build time).
#[derive(Clone, Debug)]
struct GateRecipe {
    kind_sel: u8,
    input_sels: [u16; 4],
}

fn kinds() -> [GateKind; 13] {
    GateKind::ALL
}

fn build(n_inputs: usize, recipes: &[GateRecipe]) -> (Arc<Netlist>, Vec<NodeId>, Vec<NodeId>) {
    let (net, inputs, _, outputs) = build_with_gates(n_inputs, recipes);
    (net, inputs, outputs)
}

#[allow(clippy::type_complexity)]
fn build_with_gates(
    n_inputs: usize,
    recipes: &[GateRecipe],
) -> (Arc<Netlist>, Vec<NodeId>, Vec<NodeId>, Vec<NodeId>) {
    let mut b = NetlistBuilder::new();
    let inputs = b.input_bus("x", n_inputs);
    let mut pool: Vec<NodeId> = inputs.clone();
    let mut gates = Vec::new();
    for r in recipes {
        let kind = kinds()[r.kind_sel as usize % kinds().len()];
        let ins: Vec<NodeId> = (0..kind.arity())
            .map(|k| pool[r.input_sels[k] as usize % pool.len()])
            .collect();
        let g = b.gate(kind, &ins);
        pool.push(g);
        gates.push(g);
    }
    let outputs: Vec<NodeId> = pool.iter().rev().take(4).copied().collect();
    b.output_bus("y", &outputs);
    (Arc::new(b.build()), inputs, gates, outputs)
}

/// Like [`build_with_gates`], but with a layer of latches between two
/// gate clouds: latch data inputs come from the first cloud, the second
/// cloud consumes the latch outputs.
#[allow(clippy::type_complexity)]
fn build_seq(
    n_inputs: usize,
    pre: &[GateRecipe],
    latch_sels: &[(u16, bool)],
    post: &[GateRecipe],
) -> (Arc<Netlist>, Vec<NodeId>, Vec<NodeId>, Vec<NodeId>) {
    let mut b = NetlistBuilder::new();
    let inputs = b.input_bus("x", n_inputs);
    let mut pool: Vec<NodeId> = inputs.clone();
    let mut gates = Vec::new();
    let mut grow = |b: &mut NetlistBuilder, pool: &mut Vec<NodeId>, recipes: &[GateRecipe]| {
        for r in recipes {
            let kind = kinds()[r.kind_sel as usize % kinds().len()];
            let ins: Vec<NodeId> = (0..kind.arity())
                .map(|k| pool[r.input_sels[k] as usize % pool.len()])
                .collect();
            let g = b.gate(kind, &ins);
            pool.push(g);
            gates.push(g);
        }
    };
    grow(&mut b, &mut pool, pre);
    let latches: Vec<NodeId> = latch_sels
        .iter()
        .map(|&(sel, init)| b.latch(pool[sel as usize % pool.len()], init))
        .collect();
    pool.extend(&latches);
    grow(&mut b, &mut pool, post);
    let outputs: Vec<NodeId> = pool.iter().rev().take(4).copied().collect();
    b.output_bus("y", &outputs);
    (Arc::new(b.build()), inputs, gates, outputs)
}

/// A stateful faulty cell: passes its first input through, but flips it
/// on every `period`-th evaluation. Bit-identity across settle
/// strategies requires that the engines feed every override the exact
/// same evaluation sequence.
#[derive(Debug)]
struct PeriodicFlip {
    n: u32,
    period: u32,
}

impl GateBehavior for PeriodicFlip {
    fn eval(&mut self, inputs: &[bool]) -> bool {
        self.n = self.n.wrapping_add(1);
        let healthy = inputs.first().copied().unwrap_or(false);
        healthy ^ self.n.is_multiple_of(self.period)
    }

    fn reset(&mut self) {
        self.n = 0;
    }
}

/// A stateless truth-word override: the scalar-simulator twin of
/// [`LutExec::patch_gate`], so patched streams can be checked against
/// an identically faulted event-driven engine.
#[derive(Debug)]
struct TableBehavior {
    table: u16,
}

impl GateBehavior for TableBehavior {
    fn eval(&mut self, inputs: &[bool]) -> bool {
        let v = inputs
            .iter()
            .enumerate()
            .fold(0usize, |acc, (k, &b)| acc | (usize::from(b) << k));
        (self.table >> v) & 1 == 1
    }

    fn reset(&mut self) {}
}

/// All-ones truth word for a gate's arity (tables are `2^arity` bits).
fn table_mask(net: &Netlist, id: NodeId) -> u16 {
    match net.node(id) {
        Node::Gate { kind, .. } => ((1u32 << (1usize << kind.arity())) - 1) as u16,
        _ => unreachable!("patch targets are gates"),
    }
}

/// Reference: recursively evaluate a node from the netlist structure.
fn reference_eval(net: &Netlist, id: NodeId, input_vals: &[(NodeId, bool)]) -> bool {
    match net.node(id) {
        Node::Input { .. } => {
            input_vals
                .iter()
                .find(|(i, _)| *i == id)
                .expect("all inputs driven")
                .1
        }
        Node::Gate { kind, inputs } => {
            let vals: Vec<bool> = inputs
                .iter()
                .map(|&i| reference_eval(net, i, input_vals))
                .collect();
            kind.eval(&vals)
        }
        Node::Latch { .. } => unreachable!("no latches generated"),
    }
}

fn recipe_strategy() -> impl Strategy<Value = GateRecipe> {
    (any::<u8>(), any::<[u16; 4]>()).prop_map(|(kind_sel, input_sels)| GateRecipe {
        kind_sel,
        input_sels,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn engines_agree_on_random_netlists(
        n_inputs in 1usize..6,
        recipes in prop::collection::vec(recipe_strategy(), 1..40),
        stimulus in prop::collection::vec(any::<u8>(), 1..8),
    ) {
        let (net, inputs, outputs) = build(n_inputs, &recipes);
        let mut scalar = Simulator::new(net.clone());
        let mut vector = Simulator64::new(net.clone());

        for word in &stimulus {
            let word = *word as u64;
            scalar.set_input_word(&inputs, word);
            scalar.settle();
            vector.set_input_words(&inputs, &[word]);
            vector.settle();

            let driven: Vec<(NodeId, bool)> = inputs
                .iter()
                .enumerate()
                .map(|(i, &id)| (id, word >> i & 1 == 1))
                .collect();
            for &out in &outputs {
                let want = reference_eval(&net, out, &driven);
                prop_assert_eq!(scalar.value(out), want, "scalar vs reference");
                prop_assert_eq!(
                    vector.lanes(out) & 1 == 1,
                    want,
                    "vector lane 0 vs reference"
                );
            }
        }
    }

    #[test]
    fn vector_lanes_are_independent(
        n_inputs in 1usize..5,
        recipes in prop::collection::vec(recipe_strategy(), 1..25),
        words in prop::collection::vec(any::<u8>(), 2..32),
    ) {
        let (net, inputs, outputs) = build(n_inputs, &recipes);
        let lane_words: Vec<u64> = words.iter().map(|&w| w as u64).collect();
        let mut vector = Simulator64::new(net.clone());
        vector.set_input_words(&inputs, &lane_words);
        vector.settle();

        let mut scalar = Simulator::new(net.clone());
        for (lane, &w) in lane_words.iter().enumerate() {
            scalar.set_input_word(&inputs, w);
            scalar.settle();
            for &out in &outputs {
                prop_assert_eq!(
                    vector.lanes(out) >> lane & 1 == 1,
                    scalar.value(out),
                    "lane {} of {:?}",
                    lane,
                    out
                );
            }
        }
    }

    /// The tentpole invariant: the event-driven settle is bit-identical
    /// to the compiled full sweep on every node, for any netlist, any
    /// stimulus sequence, and any set of stateful overrides — including
    /// a mid-sequence mode switch and a mid-sequence override removal.
    #[test]
    fn event_settle_matches_full_settle(
        n_inputs in 1usize..6,
        recipes in prop::collection::vec(recipe_strategy(), 1..40),
        fault_sels in prop::collection::vec((any::<u16>(), 1u32..5), 0..4),
        stimulus in prop::collection::vec(any::<u8>(), 1..16),
    ) {
        let (net, inputs, gates, _) = build_with_gates(n_inputs, &recipes);
        let mut event = Simulator::new(net.clone());
        event.set_settle_mode(SettleMode::Event);
        let mut full = Simulator::new(net.clone());
        full.set_settle_mode(SettleMode::Full);
        let mut faulty = Vec::new();
        for &(sel, period) in &fault_sels {
            let g = gates[sel as usize % gates.len()];
            event.override_gate(g, Box::new(PeriodicFlip { n: 0, period }));
            full.override_gate(g, Box::new(PeriodicFlip { n: 0, period }));
            faulty.push(g);
        }
        for (step, word) in stimulus.iter().enumerate() {
            let w = *word as u64;
            event.set_input_word(&inputs, w);
            event.settle();
            full.set_input_word(&inputs, w);
            full.settle();
            for &id in &gates {
                prop_assert_eq!(
                    event.value(id), full.value(id),
                    "node {:?} at step {}", id, step
                );
            }
            // Halfway through, heal one defect and bounce the event
            // simulator through the Full mode — neither may
            // desynchronize the engines. (No extra settle: that would
            // legitimately advance the stateful overrides.)
            if step == stimulus.len() / 2 {
                if let Some(g) = faulty.pop() {
                    event.clear_override(g);
                    full.clear_override(g);
                }
                event.set_settle_mode(SettleMode::Full);
                event.set_settle_mode(SettleMode::Event);
            }
        }
    }

    /// Same invariant through latches: `tick` and `reset_state` must
    /// keep the incremental bookkeeping consistent across clock cycles.
    #[test]
    fn event_settle_matches_full_settle_with_latches(
        n_inputs in 1usize..5,
        pre in prop::collection::vec(recipe_strategy(), 1..20),
        latch_sels in prop::collection::vec((any::<u16>(), any::<bool>()), 1..5),
        post in prop::collection::vec(recipe_strategy(), 1..20),
        fault_sels in prop::collection::vec((any::<u16>(), 1u32..5), 0..3),
        stimulus in prop::collection::vec(any::<u8>(), 1..16),
    ) {
        let (net, inputs, gates, _) = build_seq(n_inputs, &pre, &latch_sels, &post);
        let mut event = Simulator::new(net.clone());
        let mut full = Simulator::new(net.clone());
        full.set_settle_mode(SettleMode::Full);
        prop_assert_eq!(event.settle_mode(), SettleMode::Event);
        for &(sel, period) in &fault_sels {
            let g = gates[sel as usize % gates.len()];
            event.override_gate(g, Box::new(PeriodicFlip { n: 0, period }));
            full.override_gate(g, Box::new(PeriodicFlip { n: 0, period }));
        }
        for (step, word) in stimulus.iter().enumerate() {
            let w = *word as u64;
            event.set_input_word(&inputs, w);
            event.settle();
            full.set_input_word(&inputs, w);
            full.settle();
            for &id in &gates {
                prop_assert_eq!(
                    event.value(id), full.value(id),
                    "node {:?} at step {}", id, step
                );
            }
            event.tick();
            full.tick();
            if step % 5 == 4 {
                event.reset_state();
                full.reset_state();
            }
        }
    }

    /// The 64-lane engine's event-driven settle must match its own
    /// compiled sweep on every lane.
    #[test]
    fn event_settle_matches_full_settle_64(
        n_inputs in 1usize..6,
        recipes in prop::collection::vec(recipe_strategy(), 1..40),
        stimulus in prop::collection::vec(any::<[u8; 4]>(), 1..12),
    ) {
        let (net, inputs, gates, _) = build_with_gates(n_inputs, &recipes);
        let mut event = Simulator64::new(net.clone());
        event.set_settle_mode(SettleMode::Event);
        let mut full = Simulator64::new(net.clone());
        full.set_settle_mode(SettleMode::Full);
        for (step, lanes) in stimulus.iter().enumerate() {
            let words: Vec<u64> = lanes.iter().map(|&w| w as u64).collect();
            event.set_input_words(&inputs, &words);
            event.settle();
            full.set_input_words(&inputs, &words);
            full.settle();
            for &id in &gates {
                prop_assert_eq!(
                    event.lanes(id), full.lanes(id),
                    "node {:?} at step {}", id, step
                );
            }
        }
    }

    /// The compiled LUT instruction stream, run one lane at a time,
    /// must be bit-identical to the event-driven scalar engine for any
    /// netlist with latches, any mix of truth-word patches and stateful
    /// overrides, across settle/tick cycles and state resets.
    #[test]
    fn lut_exec_matches_event_simulator(
        n_inputs in 1usize..5,
        pre in prop::collection::vec(recipe_strategy(), 1..20),
        latch_sels in prop::collection::vec((any::<u16>(), any::<bool>()), 1..5),
        post in prop::collection::vec(recipe_strategy(), 1..20),
        fault_sels in prop::collection::vec((any::<u16>(), 1u32..5), 0..3),
        patch_sels in prop::collection::vec((any::<u16>(), any::<u16>()), 0..3),
        stimulus in prop::collection::vec(any::<u8>(), 1..16),
    ) {
        let (net, inputs, gates, _) = build_seq(n_inputs, &pre, &latch_sels, &post);
        let mut sim = Simulator::new(net.clone());
        prop_assert_eq!(sim.settle_mode(), SettleMode::Event);
        let mut ex = LutExec::new(Arc::new(LutProgram::compile(net.clone())));
        ex.set_active_lanes(1);
        for &(sel, period) in &fault_sels {
            let g = gates[sel as usize % gates.len()];
            sim.override_gate(g, Box::new(PeriodicFlip { n: 0, period }));
            ex.override_gate(g, Box::new(PeriodicFlip { n: 0, period }));
        }
        for &(sel, table) in &patch_sels {
            let g = gates[sel as usize % gates.len()];
            let t = table & table_mask(&net, g);
            sim.override_gate(g, Box::new(TableBehavior { table: t }));
            ex.patch_gate(g, t);
        }
        for (step, word) in stimulus.iter().enumerate() {
            let w = *word as u64;
            sim.set_input_word(&inputs, w);
            sim.settle();
            ex.set_input_words(&inputs, &[w]);
            ex.exec();
            for &id in &gates {
                prop_assert_eq!(
                    ex.lanes(id) & 1 == 1, sim.value(id),
                    "node {:?} at step {}", id, step
                );
            }
            sim.tick();
            ex.tick();
            if step % 5 == 4 {
                sim.reset_state();
                ex.reset_state();
            }
        }
    }

    /// 64-lane sweeps over a patched sequential netlist must match an
    /// identically faulted scalar engine run independently per lane.
    #[test]
    fn lut_exec_lanes_match_per_lane_scalar(
        n_inputs in 1usize..5,
        pre in prop::collection::vec(recipe_strategy(), 1..15),
        latch_sels in prop::collection::vec((any::<u16>(), any::<bool>()), 1..4),
        post in prop::collection::vec(recipe_strategy(), 1..15),
        patch_sels in prop::collection::vec((any::<u16>(), any::<u16>()), 0..3),
        stimulus in prop::collection::vec(any::<[u8; 6]>(), 1..8),
    ) {
        let (net, inputs, gates, _) = build_seq(n_inputs, &pre, &latch_sels, &post);
        let mut ex = LutExec::new(Arc::new(LutProgram::compile(net.clone())));
        let mut sims: Vec<Simulator> = (0..6).map(|_| Simulator::new(net.clone())).collect();
        for &(sel, table) in &patch_sels {
            let g = gates[sel as usize % gates.len()];
            let t = table & table_mask(&net, g);
            ex.patch_gate(g, t);
            for sim in &mut sims {
                sim.override_gate(g, Box::new(TableBehavior { table: t }));
            }
        }
        prop_assert!(ex.fully_patched());
        for (step, lanes) in stimulus.iter().enumerate() {
            let words: Vec<u64> = lanes.iter().map(|&w| w as u64).collect();
            ex.set_input_words(&inputs, &words);
            ex.exec();
            for (lane, sim) in sims.iter_mut().enumerate() {
                sim.set_input_word(&inputs, words[lane]);
                sim.settle();
                for &id in &gates {
                    prop_assert_eq!(
                        ex.lanes(id) >> lane & 1 == 1, sim.value(id),
                        "node {:?}, lane {}, step {}", id, lane, step
                    );
                }
            }
            ex.tick();
            for sim in &mut sims {
                sim.tick();
            }
        }
    }

    /// Stateful overrides drop the affected instructions to per-lane
    /// evaluation in ascending lane order — one batch of N rows must
    /// equal N consecutive scalar calls.
    #[test]
    fn lut_exec_stateful_lanes_replay_scalar_row_order(
        n_inputs in 1usize..5,
        recipes in prop::collection::vec(recipe_strategy(), 1..25),
        fault_sels in prop::collection::vec((any::<u16>(), 1u32..5), 1..3),
        rows in prop::collection::vec(any::<u8>(), 1..20),
    ) {
        let (net, inputs, gates, outputs) = build_with_gates(n_inputs, &recipes);
        let mut ex = LutExec::new(Arc::new(LutProgram::compile(net.clone())));
        let mut sim = Simulator::new(net.clone());
        for &(sel, period) in &fault_sels {
            let g = gates[sel as usize % gates.len()];
            ex.override_gate(g, Box::new(PeriodicFlip { n: 0, period }));
            sim.override_gate(g, Box::new(PeriodicFlip { n: 0, period }));
        }
        prop_assert!(!ex.fully_patched());
        for chunk in rows.chunks(64) {
            let words: Vec<u64> = chunk.iter().map(|&w| w as u64).collect();
            ex.set_active_lanes(words.len());
            ex.set_input_words(&inputs, &words);
            ex.exec();
            for (lane, &w) in words.iter().enumerate() {
                sim.set_input_word(&inputs, w);
                sim.settle();
                for &out in &outputs {
                    prop_assert_eq!(
                        ex.lanes(out) >> lane & 1 == 1, sim.value(out),
                        "output {:?}, row {}", out, lane
                    );
                }
            }
        }
    }

    #[test]
    fn logic_depth_bounded_by_gate_count(
        n_inputs in 1usize..5,
        recipes in prop::collection::vec(recipe_strategy(), 1..40),
    ) {
        let (net, _, _) = build(n_inputs, &recipes);
        prop_assert!(net.logic_depth() <= net.gate_count());
        prop_assert!(net.transistor_count() >= 2 * net.gate_count() as u64);
    }
}
