//! Property tests for the fused-stream compiler and its optimizer.
//!
//! The invariant ladder: for any pair of random (latched) netlists with
//! random permanent truth-word patches, stitched into one fused stream,
//!
//! * the **unoptimized** fused program,
//! * the **optimized** fused program (constant folding through patched
//!   truth words + known-constant inputs, copy propagation, dead-LUT
//!   elimination, slot compaction), and
//! * per-operator `SettleMode::Event` [`Simulator`]s with identical
//!   [`TableBehavior`] overrides (one per segment, chained by hand)
//!
//! must be bit-identical on every surviving register, every lane, every
//! step, across latch ticks and state resets. Permanent faults are the
//! only class that lowers into truth words and therefore into fused
//! streams; dynamic classes (transient/intermittent overrides) are
//! refused upstream by the network compiler and fall back to the
//! per-operator engines, where `prop.rs` already pins them to the
//! scalar reference.

use std::sync::Arc;

use dta_logic::{
    optimize, optimize_with_consts, FuseBuilder, FusedExec, GateBehavior, GateKind, LutExec,
    LutProgram, Netlist, NetlistBuilder, NodeId, SettleMode, Simulator, DEAD_SLOT,
};
use proptest::prelude::*;

#[derive(Clone, Debug)]
struct GateRecipe {
    kind_sel: u8,
    input_sels: [u16; 4],
}

fn kinds() -> [GateKind; 13] {
    GateKind::ALL
}

/// Random netlist with a latch layer between two gate clouds (either
/// cloud may be trivially small, so latches can feed outputs directly).
#[allow(clippy::type_complexity)]
fn build_seq(
    n_inputs: usize,
    pre: &[GateRecipe],
    latch_sels: &[(u16, bool)],
    post: &[GateRecipe],
) -> (
    Arc<Netlist>,
    Vec<NodeId>,
    Vec<NodeId>,
    Vec<NodeId>,
    Vec<NodeId>,
) {
    let mut b = NetlistBuilder::new();
    let inputs = b.input_bus("x", n_inputs);
    let mut pool: Vec<NodeId> = inputs.clone();
    let mut gates = Vec::new();
    let mut grow = |b: &mut NetlistBuilder, pool: &mut Vec<NodeId>, recipes: &[GateRecipe]| {
        for r in recipes {
            let kind = kinds()[r.kind_sel as usize % kinds().len()];
            let ins: Vec<NodeId> = (0..kind.arity())
                .map(|k| pool[r.input_sels[k] as usize % pool.len()])
                .collect();
            let g = b.gate(kind, &ins);
            pool.push(g);
            gates.push(g);
        }
    };
    grow(&mut b, &mut pool, pre);
    let latches: Vec<NodeId> = latch_sels
        .iter()
        .map(|&(sel, init)| b.latch(pool[sel as usize % pool.len()], init))
        .collect();
    pool.extend(&latches);
    grow(&mut b, &mut pool, post);
    let outputs: Vec<NodeId> = pool.iter().rev().take(4).copied().collect();
    b.output_bus("y", &outputs);
    (Arc::new(b.build()), inputs, gates, latches, outputs)
}

/// Stateless truth-word override: the scalar-simulator twin of a
/// patched LUT instruction.
#[derive(Debug)]
struct TableBehavior {
    table: u16,
}

impl GateBehavior for TableBehavior {
    fn eval(&mut self, inputs: &[bool]) -> bool {
        let v = inputs
            .iter()
            .enumerate()
            .fold(0usize, |acc, (k, &b)| acc | (usize::from(b) << k));
        (self.table >> v) & 1 == 1
    }

    fn reset(&mut self) {}
}

fn table_mask(net: &Netlist, id: NodeId) -> u16 {
    match net.node(id) {
        dta_logic::Node::Gate { kind, .. } => ((1u32 << (1usize << kind.arity())) - 1) as u16,
        _ => unreachable!("patch targets are gates"),
    }
}

/// One fused segment: compiled program plus the patch set applied to
/// both the fused stream and its scalar reference twin.
struct Segment {
    net: Arc<Netlist>,
    inputs: Vec<NodeId>,
    gates: Vec<NodeId>,
    latches: Vec<NodeId>,
    outputs: Vec<NodeId>,
    patches: Vec<(NodeId, u16)>,
}

impl Segment {
    fn new(
        n_inputs: usize,
        pre: &[GateRecipe],
        latch_sels: &[(u16, bool)],
        post: &[GateRecipe],
        patch_sels: &[(u16, u16)],
    ) -> Self {
        let (net, inputs, gates, latches, outputs) = build_seq(n_inputs, pre, latch_sels, post);
        let mut patches = Vec::new();
        for &(sel, table) in patch_sels {
            let g = gates[sel as usize % gates.len()];
            if !patches.iter().any(|&(p, _)| p == g) {
                patches.push((g, table & table_mask(&net, g)));
            }
        }
        Self {
            net,
            inputs,
            gates,
            latches,
            outputs,
            patches,
        }
    }

    /// Patched instruction stream, exactly as the network compiler
    /// consumes it: permanent faults already lowered into truth words
    /// by [`LutExec::patch_gate`].
    fn patched_exec(&self) -> LutExec {
        let mut ex = LutExec::new(Arc::new(LutProgram::compile(Arc::clone(&self.net))));
        for &(g, t) in &self.patches {
            ex.patch_gate(g, t);
        }
        assert!(ex.fully_patched());
        ex
    }

    /// A scalar event-driven reference with identical overrides.
    fn reference(&self) -> Simulator {
        let mut sim = Simulator::new(Arc::clone(&self.net));
        assert_eq!(sim.settle_mode(), SettleMode::Event);
        for &(g, t) in &self.patches {
            sim.override_gate(g, Box::new(TableBehavior { table: t }));
        }
        sim
    }
}

const LANES: usize = 4;

fn recipe_strategy() -> impl Strategy<Value = GateRecipe> {
    (any::<u8>(), any::<[u16; 4]>()).prop_map(|(kind_sel, input_sels)| GateRecipe {
        kind_sel,
        input_sels,
    })
}

type SegParams = (
    usize,
    Vec<GateRecipe>,
    Vec<(u16, bool)>,
    Vec<GateRecipe>,
    Vec<(u16, u16)>,
);

fn seg_strategy() -> impl Strategy<Value = SegParams> {
    (
        1usize..5,
        prop::collection::vec(recipe_strategy(), 1..15),
        prop::collection::vec((any::<u16>(), any::<bool>()), 0..4),
        prop::collection::vec(recipe_strategy(), 1..15),
        prop::collection::vec((any::<u16>(), any::<u16>()), 0..4),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Two random patched segments fused A→B (B's first inputs read A's
    /// output registers directly — no repacking): unoptimized fused,
    /// optimized fused, and two chained event-driven scalar references
    /// agree on every surviving register, lane, and step.
    #[test]
    fn fused_optimized_and_event_reference_agree(
        seg_a in seg_strategy(),
        seg_b in seg_strategy(),
        const_sels in prop::collection::vec((any::<u16>(), any::<bool>()), 0..3),
        use_barrier in any::<bool>(),
        stimulus in prop::collection::vec(any::<[u16; LANES]>(), 1..10),
    ) {
        let a = Segment::new(seg_a.0, &seg_a.1, &seg_a.2, &seg_a.3, &seg_a.4);
        let b = Segment::new(seg_b.0, &seg_b.1, &seg_b.2, &seg_b.3, &seg_b.4);
        let ex_a = a.patched_exec();
        let ex_b = b.patched_exec();

        // Fuse: fresh slots for A's primary inputs; B's leading inputs
        // bound straight onto A's output registers.
        let mut fb = FuseBuilder::new();
        let in_a: Vec<u32> = a.inputs.iter().map(|_| fb.fresh_slot()).collect();
        let bind_a: Vec<(u32, u32)> = a
            .inputs
            .iter()
            .zip(&in_a)
            .map(|(id, &s)| (id.index() as u32, s))
            .collect();
        let map_a = fb.append(
            ex_a.instrs(),
            ex_a.program().n_slots(),
            ex_a.program().latch_slots(),
            &bind_a,
        );
        if use_barrier {
            fb.barrier();
        }
        let n_bind = a.outputs.len().min(b.inputs.len());
        let mut bind_b: Vec<(u32, u32)> = Vec::new();
        let mut in_b_extra: Vec<(usize, u32)> = Vec::new();
        for (j, id) in b.inputs.iter().enumerate() {
            let fused = if j < n_bind {
                map_a[a.outputs[j].index()]
            } else {
                let s = fb.fresh_slot();
                in_b_extra.push((j, s));
                s
            };
            bind_b.push((id.index() as u32, fused));
        }
        let map_b = fb.append(
            ex_b.instrs(),
            ex_b.program().n_slots(),
            ex_b.program().latch_slots(),
            &bind_b,
        );
        let fused = fb.finish();

        // Known-constant primary inputs of A, declared to the optimizer.
        let consts: Vec<(u32, bool)> = {
            let mut seen = Vec::new();
            for &(sel, v) in &const_sels {
                let j = sel as usize % in_a.len();
                if !seen.iter().any(|&(s, _)| s == in_a[j]) {
                    seen.push((in_a[j], v));
                }
            }
            seen
        };
        let roots: Vec<u32> = a
            .outputs
            .iter()
            .map(|o| map_a[o.index()])
            .chain(b.outputs.iter().map(|o| map_b[o.index()]))
            .collect();
        let (opt, sm, _) = optimize_with_consts(&fused, &roots, &consts);

        let mut plain = FusedExec::new(Arc::new(fused));
        let mut optim = FusedExec::new(Arc::new(opt));
        let mut sims_a: Vec<Simulator> = (0..LANES).map(|_| a.reference()).collect();
        let mut sims_b: Vec<Simulator> = (0..LANES).map(|_| b.reference()).collect();

        for (step, lanes) in stimulus.iter().enumerate() {
            // Drive A's inputs (constants pinned in every lane).
            for (j, &slot) in in_a.iter().enumerate() {
                let cv = consts.iter().find(|&&(s, _)| s == slot).map(|&(_, v)| v);
                let mut word = 0u64;
                for (lane, &bits) in lanes.iter().enumerate() {
                    let bit = cv.unwrap_or(bits >> j & 1 == 1);
                    word |= u64::from(bit) << lane;
                }
                plain.set_slot(slot, word);
                if cv.is_none() {
                    optim.set_slot(sm.get(slot), word);
                }
            }
            // Drive B's unbound inputs from the high byte.
            for &(j, slot) in &in_b_extra {
                let mut word = 0u64;
                for (lane, &bits) in lanes.iter().enumerate() {
                    word |= u64::from(bits >> (8 + j % 8) & 1 == 1) << lane;
                }
                plain.set_slot(slot, word);
                optim.set_slot(sm.get(slot), word);
            }
            plain.exec();
            optim.exec();

            // Chained scalar references, one per lane.
            for (lane, &bits) in lanes.iter().enumerate() {
                let sim_a = &mut sims_a[lane];
                for (j, &id) in a.inputs.iter().enumerate() {
                    let cv = consts
                        .iter()
                        .find(|&&(s, _)| s == in_a[j])
                        .map(|&(_, v)| v);
                    sim_a.set_input(id, cv.unwrap_or(bits >> j & 1 == 1));
                }
                sim_a.settle();
                let sim_b = &mut sims_b[lane];
                for (j, &id) in b.inputs.iter().enumerate() {
                    let v = if j < n_bind {
                        sim_a.value(a.outputs[j])
                    } else {
                        bits >> (8 + j % 8) & 1 == 1
                    };
                    sim_b.set_input(id, v);
                }
                sim_b.settle();

                // Every gate and latch of both segments must agree.
                for (tag, seg, map, sim) in [
                    ("A", &a, &map_a, &mut *sim_a),
                    ("B", &b, &map_b, &mut *sim_b),
                ] {
                    for &id in seg.gates.iter().chain(&seg.latches) {
                        let slot = map[id.index()];
                        let want = sim.value(id);
                        prop_assert_eq!(
                            plain.slot(slot) >> lane & 1 == 1,
                            want,
                            "plain {} {:?} lane {} step {}",
                            tag,
                            id,
                            lane,
                            step
                        );
                        let c = sm.get(slot);
                        if c != DEAD_SLOT {
                            prop_assert_eq!(
                                optim.slot(c) >> lane & 1 == 1,
                                want,
                                "optimized {} {:?} lane {} step {}",
                                tag,
                                id,
                                lane,
                                step
                            );
                        }
                    }
                }
            }

            plain.tick();
            optim.tick();
            for sim in sims_a.iter_mut().chain(sims_b.iter_mut()) {
                sim.tick();
            }
            if step % 4 == 3 {
                plain.reset_state();
                optim.reset_state();
                for sim in sims_a.iter_mut().chain(sims_b.iter_mut()) {
                    sim.reset_state();
                }
            }
        }
    }

    /// Regression: dead-LUT elimination never removes a latch-feeding
    /// instruction, even when *no* combinational root depends on the
    /// latch — state must keep evolving exactly like the event-driven
    /// reference across ticks.
    #[test]
    fn dead_lut_elimination_preserves_latch_feeders(
        seg in seg_strategy(),
        stimulus in prop::collection::vec(any::<u8>(), 1..12),
    ) {
        let mut seg = seg;
        if seg.2.is_empty() {
            seg.2.push((0, false)); // the property needs at least one latch
        }
        let s = Segment::new(seg.0, &seg.1, &seg.2, &seg.3, &seg.4);
        let ex_s = s.patched_exec();
        let mut fb = FuseBuilder::new();
        let in_s: Vec<u32> = s.inputs.iter().map(|_| fb.fresh_slot()).collect();
        let bind: Vec<(u32, u32)> = s
            .inputs
            .iter()
            .zip(&in_s)
            .map(|(id, &sl)| (id.index() as u32, sl))
            .collect();
        let map = fb.append(
            ex_s.instrs(),
            ex_s.program().n_slots(),
            ex_s.program().latch_slots(),
            &bind,
        );
        let fused = fb.finish();
        let n_latches = fused.latch_slots().len();

        // No roots at all: only latch state keeps anything alive.
        let (opt, sm, _) = optimize(&fused, &[]);
        prop_assert_eq!(opt.latch_slots().len(), n_latches, "no latch dropped");

        let mut ex = FusedExec::new(Arc::new(opt));
        let mut sim = s.reference();
        for (step, &word) in stimulus.iter().enumerate() {
            for (j, &slot) in in_s.iter().enumerate() {
                let bit = word >> j & 1 == 1;
                ex.set_slot(sm.get(slot), if bit { !0 } else { 0 });
                sim.set_input(s.inputs[j], bit);
            }
            ex.exec();
            sim.settle();
            for &l in &s.latches {
                prop_assert_eq!(
                    ex.slot(sm.get(map[l.index()])) & 1 == 1,
                    sim.value(l),
                    "latch {:?} step {}",
                    l,
                    step
                );
            }
            ex.tick();
            sim.tick();
        }
    }
}
