//! Symbolic reconstruction of defective stages as logic expressions.
//!
//! This mirrors the paper's §III-B flow: after injecting transistor-level
//! defects, the altered schematic is reconstructed into a *logic
//! expression* (one for the pull-up connectivity `Z_P`, one for the
//! pull-down connectivity `Z_N`) combined by a **B-block** that models the
//! asymmetric-network cases (`Z_N` dominance, memory effect).
//!
//! The reconstruction used here enumerates conducting paths from each
//! rail to the stage output: each simple path contributes a product term
//! (AND of per-switch conduction conditions) and the expression is the OR
//! of all path terms. This is equivalent to the paper's TLogic rewriting
//! (series → AND, parallel → OR, bypasses eliminating transistors) but
//! also handles the arbitrary graphs created by bridges without needing
//! connection splitting. Delay defects "take the form of a state element
//! that stores the line value and propagates it at the next
//! transition(s)" (§III-B): they reconstruct as **delayed literals**,
//! whose evaluation reads the *previous* value of the driving signal.

use std::fmt;

use crate::cell::{CmosCell, Health, Polarity, Signal, Stage, OUT, VDD, VSS};

/// A reconstructed Boolean expression over cell pins and internal stage
/// outputs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Expr {
    /// Constant.
    Const(bool),
    /// A (possibly complemented) gate signal: the conduction condition of
    /// one healthy transistor (complemented for P-channel devices).
    /// A *delayed* literal models the §III-B state element on a gate
    /// line: it reads the signal's value from the previous evaluation.
    Literal {
        /// The driving signal.
        sig: Signal,
        /// True if the condition is the complement of the signal.
        complemented: bool,
        /// True if a delay defect makes this condition read the
        /// previous value of the signal.
        delayed: bool,
    },
    /// Conjunction of conditions along a conduction path.
    And(Vec<Expr>),
    /// Disjunction over alternative conduction paths.
    Or(Vec<Expr>),
}

impl Expr {
    /// Evaluates the expression given a signal resolver; delayed
    /// literals read the same resolver (use
    /// [`Expr::eval_with_prev`] when delay state matters).
    pub fn eval(&self, sig_of: &impl Fn(Signal) -> bool) -> bool {
        self.eval_with_prev(sig_of, sig_of)
    }

    /// Evaluates with separate resolvers for current and
    /// previous-evaluation signal values (delay defects read the
    /// latter).
    pub fn eval_with_prev(
        &self,
        sig_of: &impl Fn(Signal) -> bool,
        prev_of: &impl Fn(Signal) -> bool,
    ) -> bool {
        match self {
            Expr::Const(v) => *v,
            Expr::Literal {
                sig,
                complemented,
                delayed,
            } => {
                let raw = if *delayed {
                    prev_of(*sig)
                } else {
                    sig_of(*sig)
                };
                raw ^ complemented
            }
            Expr::And(terms) => terms.iter().all(|t| t.eval_with_prev(sig_of, prev_of)),
            Expr::Or(terms) => terms.iter().any(|t| t.eval_with_prev(sig_of, prev_of)),
        }
    }

    /// True if any literal is delayed (the expression is stateful).
    pub fn has_delay(&self) -> bool {
        match self {
            Expr::Const(_) => false,
            Expr::Literal { delayed, .. } => *delayed,
            Expr::And(ts) | Expr::Or(ts) => ts.iter().any(Expr::has_delay),
        }
    }

    /// Number of literal occurrences (a rough size measure).
    pub fn literal_count(&self) -> usize {
        match self {
            Expr::Const(_) => 0,
            Expr::Literal { .. } => 1,
            Expr::And(ts) | Expr::Or(ts) => ts.iter().map(Expr::literal_count).sum(),
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Const(v) => write!(f, "{}", u8::from(*v)),
            Expr::Literal {
                sig,
                complemented,
                delayed,
            } => {
                match sig {
                    Signal::Pin(k) => write!(f, "x{k}")?,
                    Signal::Stage(j) => write!(f, "s{j}")?,
                }
                if *complemented {
                    write!(f, "'")?;
                }
                if *delayed {
                    write!(f, "~")?; // previous-value marker
                }
                Ok(())
            }
            Expr::And(ts) => {
                if ts.is_empty() {
                    return write!(f, "1");
                }
                for (i, t) in ts.iter().enumerate() {
                    if i > 0 {
                        write!(f, ".")?;
                    }
                    match t {
                        Expr::Or(_) => write!(f, "({t})")?,
                        _ => write!(f, "{t}")?,
                    }
                }
                Ok(())
            }
            Expr::Or(ts) => {
                if ts.is_empty() {
                    return write!(f, "0");
                }
                for (i, t) in ts.iter().enumerate() {
                    if i > 0 {
                        write!(f, " + ")?;
                    }
                    write!(f, "{t}")?;
                }
                Ok(())
            }
        }
    }
}

/// The reconstructed `(Z_P, Z_N)` pair of one stage, combined by the
/// B-block truth table of Jain & Agrawal:
///
/// | `Z_P` | `Z_N` | output |
/// |-------|-------|--------|
/// | 0     | 0     | previous value (memory) |
/// | 0     | 1     | 0 |
/// | 1     | 0     | 1 |
/// | 1     | 1     | 0 (ground dominates) |
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BBlockExpr {
    /// Conduction expression from Vdd to the stage output.
    pub zp: Expr,
    /// Conduction expression from Vss to the stage output.
    pub zn: Expr,
}

impl BBlockExpr {
    /// Reconstructs one stage; delay defects become delayed literals.
    pub fn for_stage(stage: &Stage) -> Option<BBlockExpr> {
        Some(BBlockExpr {
            zp: rail_expr(stage, VDD),
            zn: rail_expr(stage, VSS),
        })
    }

    /// Applies the B-block truth table (delayed literals read the
    /// current resolver; see [`BBlockExpr::resolve_with_prev`]).
    pub fn resolve(&self, sig_of: &impl Fn(Signal) -> bool, prev: bool) -> bool {
        self.resolve_with_prev(sig_of, sig_of, prev)
    }

    /// Applies the B-block truth table with delay-aware resolvers.
    pub fn resolve_with_prev(
        &self,
        sig_of: &impl Fn(Signal) -> bool,
        prev_of: &impl Fn(Signal) -> bool,
        prev: bool,
    ) -> bool {
        let zn = self.zn.eval_with_prev(sig_of, prev_of);
        let zp = self.zp.eval_with_prev(sig_of, prev_of);
        if zn {
            false
        } else if zp {
            true
        } else {
            prev
        }
    }
}

impl fmt::Display for BBlockExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Zp = {}; Zn = {}", self.zp, self.zn)
    }
}

/// Sum-of-products of conduction conditions over all simple paths from
/// `rail` to the stage output.
fn rail_expr(stage: &Stage, rail: usize) -> Expr {
    // Edge list: (from, to, condition). Open transistors contribute no
    // edge; shorts and bridges contribute unconditional edges.
    let mut edges: Vec<(usize, usize, Option<Expr>)> = Vec::new();
    for t in stage.transistors() {
        let cond = match t.health() {
            Health::Open => continue,
            Health::Shorted => None,
            Health::Healthy => Some(Expr::Literal {
                sig: t.gate(),
                complemented: t.polarity() == Polarity::Pmos,
                delayed: t.is_delayed(),
            }),
        };
        let (a, b) = t.terminals();
        edges.push((a, b, cond));
    }
    for &(a, b) in stage.bridges() {
        edges.push((a, b, None));
    }

    let mut products: Vec<Expr> = Vec::new();
    let mut visited = vec![false; stage.num_nodes()];
    let mut path: Vec<Expr> = Vec::new();
    dfs_paths(rail, &edges, &mut visited, &mut path, &mut products);

    if products.is_empty() {
        Expr::Const(false)
    } else {
        Expr::Or(products)
    }
}

/// Depth-first enumeration of simple paths to [`OUT`], accumulating the
/// conduction condition of each traversed switch.
fn dfs_paths(
    node: usize,
    edges: &[(usize, usize, Option<Expr>)],
    visited: &mut [bool],
    path: &mut Vec<Expr>,
    products: &mut Vec<Expr>,
) {
    if node == OUT {
        products.push(if path.is_empty() {
            Expr::Const(true)
        } else {
            Expr::And(path.clone())
        });
        return;
    }
    visited[node] = true;
    for (a, b, cond) in edges {
        let next = if *a == node {
            *b
        } else if *b == node {
            *a
        } else {
            continue;
        };
        if visited[next] {
            continue;
        }
        let pushed = if let Some(c) = cond {
            path.push(c.clone());
            true
        } else {
            false
        };
        dfs_paths(next, edges, visited, path, products);
        if pushed {
            path.pop();
        }
    }
    visited[node] = false;
}

/// Reconstructs every stage of a cell (delay defects become delayed
/// literals; the `Option` is kept for API stability and is always
/// `Some`).
pub fn reconstruct_cell(cell: &CmosCell) -> Option<Vec<BBlockExpr>> {
    cell.stages().iter().map(BBlockExpr::for_stage).collect()
}

/// Evaluates a cell through its reconstructed expressions, tracking the
/// per-stage memory exactly like the switch-level evaluator. Used to
/// cross-validate the two semantics.
#[derive(Clone, Debug)]
pub struct ExprCellEvaluator {
    exprs: Vec<BBlockExpr>,
    arity: usize,
    mem: Vec<bool>,
    /// Previous-evaluation pin values (for delayed literals).
    prev_pins: Vec<bool>,
    /// Previous-evaluation stage outputs.
    prev_stages: Vec<bool>,
}

impl ExprCellEvaluator {
    /// Builds the evaluator (always succeeds; the `Option` mirrors
    /// `reconstruct_cell`).
    pub fn new(cell: &CmosCell) -> Option<ExprCellEvaluator> {
        let exprs = reconstruct_cell(cell)?;
        Some(ExprCellEvaluator {
            mem: vec![false; exprs.len()],
            prev_pins: vec![false; cell.kind().arity()],
            prev_stages: vec![false; exprs.len()],
            arity: cell.kind().arity(),
            exprs,
        })
    }

    /// Evaluates one input vector, updating stage memories and the
    /// delay-line state.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from the cell arity.
    pub fn eval(&mut self, inputs: &[bool]) -> bool {
        assert_eq!(inputs.len(), self.arity);
        let n = self.exprs.len();
        let mut outs = vec![false; n];
        for i in 0..n {
            let prefix: &[bool] = &outs[..i];
            let sig_of = |s: Signal| match s {
                Signal::Pin(k) => inputs[k],
                Signal::Stage(j) => prefix[j],
            };
            let prev_pins = &self.prev_pins;
            let prev_stages = &self.prev_stages;
            let prev_of = |s: Signal| match s {
                Signal::Pin(k) => prev_pins[k],
                Signal::Stage(j) => prev_stages[j],
            };
            outs[i] = self.exprs[i].resolve_with_prev(&sig_of, &prev_of, self.mem[i]);
            self.mem[i] = outs[i];
        }
        self.prev_pins.copy_from_slice(inputs);
        self.prev_stages.copy_from_slice(&outs);
        outs[n - 1]
    }
}

/// How a defect set changed a cell's behavior — the paper's §III-B
/// taxonomy of effects that "cannot be modeled using a stuck logic gate
/// input": the logic function changes, the gate turns into a state
/// element, or a delay appears.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultAnalysis {
    /// The combinational function differs from the healthy cell for at
    /// least one input (evaluated with all memories at their power-on
    /// value).
    pub changes_function: bool,
    /// Some input combination leaves a stage neither pulled up nor
    /// pulled down: the cell became a state element (memory effect).
    pub introduces_state: bool,
    /// Some input combination connects a stage output to both rails
    /// (the ground-dominates case of the B-block).
    pub ground_fights: bool,
    /// A delay defect is present (delayed literal in the reconstruction).
    pub has_delay: bool,
}

impl FaultAnalysis {
    /// True if the defect set is behaviorally invisible at the gate
    /// level (no function change, no state, no fight, no delay).
    pub fn is_equivalent(&self) -> bool {
        !self.changes_function && !self.introduces_state && !self.ground_fights && !self.has_delay
    }
}

/// Analyzes a (possibly defective) cell by sweeping every pin
/// combination through the reconstructed stage expressions with
/// power-on memory state.
pub fn analyze_cell(cell: &CmosCell) -> FaultAnalysis {
    let exprs = reconstruct_cell(cell).expect("reconstruction always succeeds");
    let kind = cell.kind();
    let arity = kind.arity();
    let mut analysis = FaultAnalysis {
        has_delay: exprs.iter().any(|e| e.zp.has_delay() || e.zn.has_delay()),
        ..FaultAnalysis::default()
    };
    for bits in 0u32..1 << arity {
        let pins: Vec<bool> = (0..arity).map(|i| bits >> i & 1 == 1).collect();
        // Evaluate stages with memories at power-on (false); delayed
        // literals read the same (power-on) values, which is the
        // first-evaluation semantics.
        let n = exprs.len();
        let mut outs = vec![false; n];
        for (i, e) in exprs.iter().enumerate() {
            let prefix: &[bool] = &outs[..i];
            let sig_of = |s: Signal| match s {
                Signal::Pin(k) => pins[k],
                Signal::Stage(j) => prefix[j],
            };
            let prev_of = |s: Signal| match s {
                Signal::Pin(_) | Signal::Stage(_) => false,
            };
            let zp = e.zp.eval_with_prev(&sig_of, &prev_of);
            let zn = e.zn.eval_with_prev(&sig_of, &prev_of);
            if !zp && !zn {
                analysis.introduces_state = true;
            }
            if zp && zn {
                analysis.ground_fights = true;
            }
            outs[i] = if zn { false } else { zp };
        }
        if outs[n - 1] != kind.eval(&pins) {
            analysis.changes_function = true;
        }
    }
    analysis
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::defect::Defect;
    use crate::eval::FaultyCell;
    use dta_logic::GateKind;

    #[test]
    fn healthy_inverter_expressions() {
        let cell = CmosCell::for_gate(GateKind::Not);
        let exprs = reconstruct_cell(&cell).unwrap();
        assert_eq!(exprs.len(), 1);
        assert_eq!(exprs[0].to_string(), "Zp = x0'; Zn = x0");
    }

    #[test]
    fn healthy_nand_expressions() {
        let cell = CmosCell::for_gate(GateKind::Nand2);
        let e = &reconstruct_cell(&cell).unwrap()[0];
        // Zp: two parallel pull-ups; Zn: one series chain.
        assert_eq!(e.zp.to_string(), "x0' + x1'");
        assert_eq!(e.zn.to_string(), "x0.x1");
    }

    #[test]
    fn short_rewrites_pullup_like_paper() {
        // Paper: short on a pull-up of (a+b)(c+d) gives
        // "Z can be connected either when a=b=0 or when d=0".
        // Our OAI22 with p(b) shorted: Zp gains the unconditional hop
        // p_ab -> OUT, so Zp = x0' (through the short) + x2'.x3'.
        let mut cell = CmosCell::for_gate(GateKind::Oai22);
        cell.inject(Defect::Short {
            stage: 0,
            transistor: 5,
        })
        .unwrap();
        let e = &reconstruct_cell(&cell).unwrap()[0];
        let s = e.zp.to_string();
        assert!(s.contains("x0'"), "Zp = {s}");
        // The x0' term must appear without x1' (the short bypasses it).
        assert!(
            !s.contains("x0'.x1'"),
            "short must bypass the x1 condition: Zp = {s}"
        );
    }

    #[test]
    fn open_removes_paths() {
        let mut cell = CmosCell::for_gate(GateKind::Nand2);
        // Open the first pull-up (gate x0): Zp loses the x0' term.
        cell.inject(Defect::Open {
            stage: 0,
            transistor: 0,
        })
        .unwrap();
        let e = &reconstruct_cell(&cell).unwrap()[0];
        assert_eq!(e.zp.to_string(), "x1'");
    }

    #[test]
    fn fully_open_rail_is_const_false() {
        let mut cell = CmosCell::for_gate(GateKind::Not);
        cell.inject(Defect::Open {
            stage: 0,
            transistor: 0,
        })
        .unwrap();
        let e = &reconstruct_cell(&cell).unwrap()[0];
        assert_eq!(e.zp, Expr::Const(false));
    }

    #[test]
    fn delay_defect_reconstructs_as_delayed_literal() {
        let mut cell = CmosCell::for_gate(GateKind::Not);
        cell.inject(Defect::Delay {
            stage: 0,
            transistor: 0, // the P transistor
        })
        .unwrap();
        let e = &reconstruct_cell(&cell).unwrap()[0];
        assert_eq!(e.zp.to_string(), "x0'~", "delayed pull-up condition");
        assert_eq!(e.zn.to_string(), "x0");
        assert!(e.zp.has_delay() && !e.zn.has_delay());
    }

    #[test]
    fn delayed_evaluator_matches_switch_level() {
        // A delayed N transistor in an inverter lags falling output
        // transitions by one evaluation; both evaluators must agree on
        // the whole stimulus stream.
        let mut cell = CmosCell::for_gate(GateKind::Not);
        let nmos = cell.stages()[0]
            .transistors()
            .iter()
            .position(|t| t.is_nmos())
            .unwrap();
        cell.inject(Defect::Delay {
            stage: 0,
            transistor: nmos,
        })
        .unwrap();
        let mut switch = FaultyCell::new(cell.clone());
        let mut expr = ExprCellEvaluator::new(&cell).unwrap();
        for x in [false, true, true, false, true, false, false, true, true] {
            assert_eq!(switch.eval_cell(&[x]), expr.eval(&[x]), "at input {x}");
        }
    }

    #[test]
    fn bblock_truth_table() {
        let e = BBlockExpr {
            zp: Expr::Const(false),
            zn: Expr::Const(false),
        };
        let sig = |_s: Signal| false;
        assert!(e.resolve(&sig, true), "memory keeps 1");
        assert!(!e.resolve(&sig, false), "memory keeps 0");
        let e = BBlockExpr {
            zp: Expr::Const(true),
            zn: Expr::Const(true),
        };
        assert!(!e.resolve(&sig, true), "ground dominates");
    }

    #[test]
    fn expr_display_and_count() {
        let e = Expr::Or(vec![
            Expr::And(vec![
                Expr::Literal {
                    sig: Signal::Pin(0),
                    complemented: false,
                    delayed: false,
                },
                Expr::Literal {
                    sig: Signal::Stage(1),
                    complemented: true,
                    delayed: true,
                },
            ]),
            Expr::Const(true),
        ]);
        assert_eq!(e.to_string(), "x0.s1'~ + 1");
        assert_eq!(e.literal_count(), 2);
        assert!(e.has_delay());
    }

    /// Cross-validation: for every cell type and a battery of defect
    /// sets (no delays), the reconstructed-expression evaluator and the
    /// switch-level evaluator agree on long random-ish input sequences.
    #[test]
    fn reconstruction_matches_switch_level() {
        for kind in GateKind::ALL {
            let base = CmosCell::for_gate(kind);
            let sites: Vec<Defect> = base
                .defect_sites()
                .into_iter()
                .filter(|d| !matches!(d, Defect::Delay { .. }))
                .collect();
            // Try each single defect site, plus a few pairs.
            for (i, &d) in sites.iter().enumerate() {
                let mut cell = base.clone();
                cell.inject(d).unwrap();
                compare_evaluators(&cell, kind, i as u64);
            }
            for pair in sites.chunks(2).take(8) {
                let mut cell = base.clone();
                cell.inject_all(pair.iter().copied()).unwrap();
                compare_evaluators(&cell, kind, 999);
            }
        }
    }

    fn compare_evaluators(cell: &CmosCell, kind: GateKind, salt: u64) {
        let mut switch = FaultyCell::new(cell.clone());
        let mut expr = ExprCellEvaluator::new(cell).expect("no delays injected");
        let arity = kind.arity();
        // Deterministic pseudo-random input sequence touching all combos.
        let mut x = 0x9e3779b97f4a7c15u64 ^ salt;
        for step in 0..64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let bits = (x >> 33) as u32 | step; // mix in step for coverage
            let v: Vec<bool> = (0..arity).map(|k| bits >> k & 1 == 1).collect();
            assert_eq!(
                switch.eval_cell(&v),
                expr.eval(&v),
                "{kind} diverges on {v:?} (cell: {cell})"
            );
        }
    }

    #[test]
    fn healthy_cells_analyze_clean() {
        for kind in GateKind::ALL {
            let a = analyze_cell(&CmosCell::for_gate(kind));
            assert!(a.is_equivalent(), "{kind}: {a:?}");
        }
    }

    #[test]
    fn open_introduces_state() {
        let mut cell = CmosCell::for_gate(GateKind::Nand2);
        let nmos = cell.stages()[0]
            .transistors()
            .iter()
            .position(|t| t.is_nmos())
            .unwrap();
        cell.inject(Defect::Open {
            stage: 0,
            transistor: nmos,
        })
        .unwrap();
        let a = analyze_cell(&cell);
        assert!(a.introduces_state, "{a:?}");
        assert!(!a.is_equivalent());
    }

    #[test]
    fn short_changes_function_and_fights() {
        let mut cell = CmosCell::for_gate(GateKind::Oai22);
        cell.inject(Defect::Short {
            stage: 0,
            transistor: 5,
        })
        .unwrap();
        let a = analyze_cell(&cell);
        assert!(a.ground_fights, "{a:?}");
    }

    #[test]
    fn delay_flagged() {
        let mut cell = CmosCell::for_gate(GateKind::Not);
        cell.inject(Defect::Delay {
            stage: 0,
            transistor: 0,
        })
        .unwrap();
        let a = analyze_cell(&cell);
        assert!(a.has_delay && !a.is_equivalent());
    }
}
