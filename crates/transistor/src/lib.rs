#![warn(missing_docs)]

//! Switch-level CMOS models of the standard-cell library, with
//! transistor-level defect injection.
//!
//! This crate implements Section III of the paper ("Injecting
//! Transistor-Level Defects"): every [`dta_logic::GateKind`] cell is
//! lowered to its static-CMOS transistor schematic — complementary
//! pull-up (P) and pull-down (N) switch networks, possibly across several
//! stages for non-inverting or pass-complement cells — and physical
//! defects are injected *at the transistor level*:
//!
//! * **opens** (drain/source open → conduction path stuck off),
//! * **source–drain shorts** (path stuck on),
//! * **bridges** (shorts between two nets of the same stage),
//! * **delays** (partial shorts/opens → a gate line that propagates its
//!   value one transition late, i.e. a state element).
//!
//! Faulty cells are evaluated with the **B-block** semantics of Jain &
//! Agrawal, as adopted by the paper: per input vector, the defective
//! switch graph determines whether the output node is connected to Vdd
//! (`Z_P`) and/or Vss (`Z_N`);
//!
//! * `Z_N = 1` ⇒ output 0 (the path from ground dominates),
//! * only `Z_P = 1` ⇒ output 1,
//! * neither ⇒ the output **retains its previous value** (memory effect).
//!
//! [`reconstruct`] additionally rebuilds the faulty stage as a symbolic
//! logic expression (sum-of-products over conducting paths, combined by a
//! B-block), mirroring the paper's reconstruction flow of Figures 6–9, and
//! is tested for equivalence against the switch-graph evaluation.
//!
//! # Example
//!
//! ```
//! use dta_logic::gate::{GateBehavior, GateKind};
//! use dta_transistor::{CmosCell, Defect, FaultyCell};
//!
//! // A NAND2 with one pull-down transistor's drain open can no longer
//! // pull its output low: at the (1,1) input neither network conducts,
//! // so the gate floats and retains its previously driven value.
//! let mut cell = CmosCell::for_gate(GateKind::Nand2);
//! let t = cell.stages()[0]
//!     .transistors()
//!     .iter()
//!     .position(|t| t.is_nmos())
//!     .unwrap();
//! cell.inject(Defect::Open { stage: 0, transistor: t }).unwrap();
//! let mut faulty = FaultyCell::new(cell);
//! assert!(faulty.eval(&[false, true]), "pull-up still works");
//! assert!(faulty.eval(&[true, true]), "floats: retains the 1");
//! ```

pub mod cell;
pub mod defect;
pub mod dynamic;
pub mod eval;
pub mod reconstruct;
pub mod table;

pub use cell::{CmosCell, Polarity, Signal, Stage, Transistor};
pub use defect::{Activation, ActivationError, ActivationState, Defect, DefectError};
pub use dynamic::{DynamicCell, DynamicDefect, DynamicRefCell};
pub use eval::FaultyCell;
pub use reconstruct::{analyze_cell, BBlockExpr, Expr, FaultAnalysis};
pub use table::{CachedCell, CellTable, TruthTable64};
