//! CMOS transistor schematics for every standard-cell type.

use dta_logic::GateKind;
use std::fmt;

/// Channel polarity of a MOS transistor.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Polarity {
    /// N-channel: conducts when its gate signal is 1; lives in the
    /// pull-down network.
    Nmos,
    /// P-channel: conducts when its gate signal is 0; lives in the
    /// pull-up network.
    Pmos,
}

/// The logical signal driving a transistor gate.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Signal {
    /// Primary input pin `k` of the cell.
    Pin(usize),
    /// Output of an earlier stage of the same cell (e.g. an internal
    /// input inverter of an XOR cell).
    Stage(usize),
}

/// Conduction health of a transistor after defect injection.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Health {
    /// Conducts according to gate signal and polarity.
    #[default]
    Healthy,
    /// Drain or source open: the conduction path is stuck off.
    Open,
    /// Source–drain short: the conduction path is stuck on.
    Shorted,
}

/// One MOS transistor: a switch between net nodes `a` and `b`, controlled
/// by `gate`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Transistor {
    pub(crate) pol: Polarity,
    pub(crate) gate: Signal,
    pub(crate) a: usize,
    pub(crate) b: usize,
    pub(crate) health: Health,
    /// Partial-defect delay: the gate line propagates its value one
    /// evaluation late (a state element on the line).
    pub(crate) delayed: bool,
}

impl Transistor {
    /// Channel polarity.
    pub fn polarity(&self) -> Polarity {
        self.pol
    }

    /// True for an N-channel device.
    pub fn is_nmos(&self) -> bool {
        self.pol == Polarity::Nmos
    }

    /// Gate signal source.
    pub fn gate(&self) -> Signal {
        self.gate
    }

    /// The two net nodes this switch connects.
    pub fn terminals(&self) -> (usize, usize) {
        (self.a, self.b)
    }

    /// Conduction health after defect injection.
    pub fn health(&self) -> Health {
        self.health
    }

    /// Whether a delay defect was injected on the gate line.
    pub fn is_delayed(&self) -> bool {
        self.delayed
    }
}

/// Net node index of the positive rail within a stage.
pub const VDD: usize = 0;
/// Net node index of the ground rail within a stage.
pub const VSS: usize = 1;
/// Net node index of the stage output.
pub const OUT: usize = 2;

/// One complementary stage of a cell: a pull-up and pull-down switch
/// network over a small set of net nodes (`VDD`, `VSS`, `OUT`, plus
/// internal nodes), driving `OUT`.
#[derive(Clone, Debug)]
pub struct Stage {
    pub(crate) name: &'static str,
    pub(crate) num_nodes: usize,
    pub(crate) transistors: Vec<Transistor>,
    /// Defect-injected shorts between net-node pairs.
    pub(crate) bridges: Vec<(usize, usize)>,
}

impl Stage {
    fn new(name: &'static str, num_nodes: usize) -> Stage {
        assert!(num_nodes >= 3, "a stage has at least Vdd, Vss and OUT");
        Stage {
            name,
            num_nodes,
            transistors: Vec::new(),
            bridges: Vec::new(),
        }
    }

    fn t(&mut self, pol: Polarity, gate: Signal, a: usize, b: usize) -> &mut Stage {
        debug_assert!(a < self.num_nodes && b < self.num_nodes);
        self.transistors.push(Transistor {
            pol,
            gate,
            a,
            b,
            health: Health::Healthy,
            delayed: false,
        });
        self
    }

    /// Stage label (e.g. `"nand-core"`, `"out-inv"`).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Number of net nodes including the rails and the output.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// The transistors of this stage.
    pub fn transistors(&self) -> &[Transistor] {
        &self.transistors
    }

    /// Injected bridges (net-node shorts) of this stage.
    pub fn bridges(&self) -> &[(usize, usize)] {
        &self.bridges
    }

    /// An inverter stage: 2 transistors driving `OUT` from `sig`.
    fn inverter(sig: Signal) -> Stage {
        let mut s = Stage::new("inv", 3);
        s.t(Polarity::Pmos, sig, VDD, OUT);
        s.t(Polarity::Nmos, sig, VSS, OUT);
        s
    }

    /// A k-input NAND stage: parallel pull-ups, series pull-down chain.
    fn nand(sigs: &[Signal]) -> Stage {
        let k = sigs.len();
        let mut s = Stage::new("nand-core", 3 + (k - 1));
        for &sig in sigs {
            s.t(Polarity::Pmos, sig, VDD, OUT);
        }
        // Series chain VSS - n3 - n4 - ... - OUT.
        let mut prev = VSS;
        for (i, &sig) in sigs.iter().enumerate() {
            let next = if i == k - 1 { OUT } else { 3 + i };
            s.t(Polarity::Nmos, sig, prev, next);
            prev = next;
        }
        s
    }

    /// A k-input NOR stage: series pull-up chain, parallel pull-downs.
    fn nor(sigs: &[Signal]) -> Stage {
        let k = sigs.len();
        let mut s = Stage::new("nor-core", 3 + (k - 1));
        let mut prev = VDD;
        for (i, &sig) in sigs.iter().enumerate() {
            let next = if i == k - 1 { OUT } else { 3 + i };
            s.t(Polarity::Pmos, sig, prev, next);
            prev = next;
        }
        for &sig in sigs {
            s.t(Polarity::Nmos, sig, VSS, OUT);
        }
        s
    }

    /// AOI22 stage: `OUT = !((a&b) | (c&d))`.
    ///
    /// Pull-down: two series pairs in parallel; pull-up: two parallel
    /// pairs in series (the classic 8T complex gate).
    fn aoi22(a: Signal, b: Signal, c: Signal, d: Signal) -> Stage {
        let mut s = Stage::new("aoi22-core", 6);
        let (n_ab, n_cd, p_mid) = (3, 4, 5);
        // N: VSS -n(a)- n_ab -n(b)- OUT, and VSS -n(c)- n_cd -n(d)- OUT.
        s.t(Polarity::Nmos, a, VSS, n_ab);
        s.t(Polarity::Nmos, b, n_ab, OUT);
        s.t(Polarity::Nmos, c, VSS, n_cd);
        s.t(Polarity::Nmos, d, n_cd, OUT);
        // P: (p(a) || p(b)) in series with (p(c) || p(d)).
        s.t(Polarity::Pmos, a, VDD, p_mid);
        s.t(Polarity::Pmos, b, VDD, p_mid);
        s.t(Polarity::Pmos, c, p_mid, OUT);
        s.t(Polarity::Pmos, d, p_mid, OUT);
        s
    }

    /// OAI22 stage: `OUT = !((a|b) & (c|d))` — the complex gate of the
    /// paper's Figures 6–9.
    fn oai22(a: Signal, b: Signal, c: Signal, d: Signal) -> Stage {
        let mut s = Stage::new("oai22-core", 6);
        let (n_mid, p_ab, p_cd) = (3, 4, 5);
        // N: (n(a) || n(b)) in series with (n(c) || n(d)).
        s.t(Polarity::Nmos, a, VSS, n_mid);
        s.t(Polarity::Nmos, b, VSS, n_mid);
        s.t(Polarity::Nmos, c, n_mid, OUT);
        s.t(Polarity::Nmos, d, n_mid, OUT);
        // P: VDD -p(a)- p_ab -p(b)- OUT, and VDD -p(c)- p_cd -p(d)- OUT.
        s.t(Polarity::Pmos, a, VDD, p_ab);
        s.t(Polarity::Pmos, b, p_ab, OUT);
        s.t(Polarity::Pmos, c, VDD, p_cd);
        s.t(Polarity::Pmos, d, p_cd, OUT);
        s
    }

    /// Complementary XOR core over `a`, `b` and their complements:
    /// `OUT = a ^ b`.
    fn xor_core(a: Signal, an: Signal, b: Signal, bn: Signal) -> Stage {
        let mut s = Stage::new("xor-core", 7);
        let (n1, n2, p1, p2) = (3, 4, 5, 6);
        // Pull-down (OUT = 0 when a == b): n(a)·n(b) || n(a̅)·n(b̅).
        s.t(Polarity::Nmos, a, VSS, n1);
        s.t(Polarity::Nmos, b, n1, OUT);
        s.t(Polarity::Nmos, an, VSS, n2);
        s.t(Polarity::Nmos, bn, n2, OUT);
        // Pull-up (OUT = 1 when a != b): p(a)·p(b̅) || p(a̅)·p(b).
        s.t(Polarity::Pmos, a, VDD, p1);
        s.t(Polarity::Pmos, bn, p1, OUT);
        s.t(Polarity::Pmos, an, VDD, p2);
        s.t(Polarity::Pmos, b, p2, OUT);
        s
    }

    /// Complementary XNOR core: `OUT = !(a ^ b)`.
    fn xnor_core(a: Signal, an: Signal, b: Signal, bn: Signal) -> Stage {
        let mut s = Stage::new("xnor-core", 7);
        let (n1, n2, p1, p2) = (3, 4, 5, 6);
        // Pull-down when a != b.
        s.t(Polarity::Nmos, a, VSS, n1);
        s.t(Polarity::Nmos, bn, n1, OUT);
        s.t(Polarity::Nmos, an, VSS, n2);
        s.t(Polarity::Nmos, b, n2, OUT);
        // Pull-up when a == b.
        s.t(Polarity::Pmos, a, VDD, p1);
        s.t(Polarity::Pmos, b, p1, OUT);
        s.t(Polarity::Pmos, an, VDD, p2);
        s.t(Polarity::Pmos, bn, p2, OUT);
        s
    }

    /// Inverting 2:1 mux core: `OUT = !(s̅·a + s·b)` with `sel=s`.
    fn muxi_core(s_: Signal, sn: Signal, a: Signal, b: Signal) -> Stage {
        let mut st = Stage::new("muxi-core", 6);
        let (n1, n2, p_mid) = (3, 4, 5);
        // Pull-down when (s̅ & a) | (s & b).
        st.t(Polarity::Nmos, sn, VSS, n1);
        st.t(Polarity::Nmos, a, n1, OUT);
        st.t(Polarity::Nmos, s_, VSS, n2);
        st.t(Polarity::Nmos, b, n2, OUT);
        // Pull-up: dual network (p(s̅) || p(a)) series (p(s) || p(b)).
        st.t(Polarity::Pmos, sn, VDD, p_mid);
        st.t(Polarity::Pmos, a, VDD, p_mid);
        st.t(Polarity::Pmos, s_, p_mid, OUT);
        st.t(Polarity::Pmos, b, p_mid, OUT);
        st
    }
}

/// The full CMOS schematic of one standard cell, possibly multi-stage.
///
/// The output of the **last** stage is the cell output. Stages may
/// reference primary pins or earlier stage outputs as gate signals.
#[derive(Clone, Debug)]
pub struct CmosCell {
    kind: GateKind,
    stages: Vec<Stage>,
}

impl CmosCell {
    /// Builds the transistor schematic for a library cell.
    ///
    /// # Panics
    ///
    /// Panics for [`GateKind::Const`], which is a tie cell with no
    /// transistors and therefore no defect sites.
    pub fn for_gate(kind: GateKind) -> CmosCell {
        use Signal::{Pin, Stage as St};
        let stages = match kind {
            GateKind::Const(_) => {
                panic!("tie cells have no transistor schematic")
            }
            GateKind::Not => vec![Stage::inverter(Pin(0))],
            GateKind::Buf => vec![Stage::inverter(Pin(0)), Stage::inverter(St(0))],
            GateKind::Nand2 => vec![Stage::nand(&[Pin(0), Pin(1)])],
            GateKind::Nor2 => vec![Stage::nor(&[Pin(0), Pin(1)])],
            GateKind::Nand3 => vec![Stage::nand(&[Pin(0), Pin(1), Pin(2)])],
            GateKind::Nor3 => vec![Stage::nor(&[Pin(0), Pin(1), Pin(2)])],
            GateKind::And2 => vec![Stage::nand(&[Pin(0), Pin(1)]), Stage::inverter(St(0))],
            GateKind::Or2 => vec![Stage::nor(&[Pin(0), Pin(1)]), Stage::inverter(St(0))],
            GateKind::Xor2 => vec![
                Stage::inverter(Pin(0)),
                Stage::inverter(Pin(1)),
                Stage::xor_core(Pin(0), St(0), Pin(1), St(1)),
            ],
            GateKind::Xnor2 => vec![
                Stage::inverter(Pin(0)),
                Stage::inverter(Pin(1)),
                Stage::xnor_core(Pin(0), St(0), Pin(1), St(1)),
            ],
            GateKind::Aoi22 => vec![Stage::aoi22(Pin(0), Pin(1), Pin(2), Pin(3))],
            GateKind::Oai22 => vec![Stage::oai22(Pin(0), Pin(1), Pin(2), Pin(3))],
            GateKind::Mux2 => vec![
                Stage::inverter(Pin(0)),
                Stage::muxi_core(Pin(0), St(0), Pin(1), Pin(2)),
                Stage::inverter(St(1)),
            ],
        };
        // Every stage may only reference earlier stages.
        for (i, stage) in stages.iter().enumerate() {
            for t in &stage.transistors {
                if let Signal::Stage(j) = t.gate {
                    assert!(j < i, "stage {i} references later stage {j}");
                }
            }
        }
        CmosCell { kind, stages }
    }

    /// The library cell this schematic implements.
    pub fn kind(&self) -> GateKind {
        self.kind
    }

    /// The stages, in evaluation order; the last stage drives the cell
    /// output.
    pub fn stages(&self) -> &[Stage] {
        &self.stages
    }

    pub(crate) fn stages_mut(&mut self) -> &mut [Stage] {
        &mut self.stages
    }

    /// Total transistor count of the schematic.
    pub fn transistor_count(&self) -> usize {
        self.stages.iter().map(|s| s.transistors.len()).sum()
    }
}

impl CmosCell {
    /// Renders the schematic as a human-readable transistor table (one
    /// line per device: polarity, gate signal, terminals, health) — the
    /// textual analogue of the paper's Figure 7.
    pub fn schematic_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let node_name = |n: usize| match n {
            VDD => "Vdd".to_string(),
            VSS => "Vss".to_string(),
            OUT => "Z".to_string(),
            other => format!("n{other}"),
        };
        for (si, stage) in self.stages.iter().enumerate() {
            let _ = writeln!(out, "stage {si} ({}):", stage.name());
            for (ti, t) in stage.transistors().iter().enumerate() {
                let pol = if t.is_nmos() { "NMOS" } else { "PMOS" };
                let gate = match t.gate() {
                    Signal::Pin(k) => format!("pin {k}"),
                    Signal::Stage(j) => format!("stage {j} out"),
                };
                let (a, b) = t.terminals();
                let health = match t.health() {
                    Health::Healthy => "",
                    Health::Open => "  [OPEN]",
                    Health::Shorted => "  [S-D SHORT]",
                };
                let delay = if t.is_delayed() { "  [DELAYED]" } else { "" };
                let _ = writeln!(
                    out,
                    "  t{ti}: {pol} gate={gate} {}--{}{health}{delay}",
                    node_name(a),
                    node_name(b)
                );
            }
            for &(a, b) in stage.bridges() {
                let _ = writeln!(out, "  bridge: {} ~ {}", node_name(a), node_name(b));
            }
        }
        out
    }
}

impl fmt::Display for CmosCell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} stages, {} transistors)",
            self.kind,
            self.stages.len(),
            self.transistor_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transistor_counts_match_library() {
        for kind in GateKind::ALL {
            let cell = CmosCell::for_gate(kind);
            assert_eq!(
                cell.transistor_count() as u32,
                kind.transistor_count(),
                "count mismatch for {kind}"
            );
        }
    }

    #[test]
    fn networks_are_complementary_in_size() {
        // Static CMOS: equal numbers of N and P devices per cell.
        for kind in GateKind::ALL {
            let cell = CmosCell::for_gate(kind);
            let n: usize = cell
                .stages()
                .iter()
                .flat_map(|s| s.transistors())
                .filter(|t| t.is_nmos())
                .count();
            assert_eq!(n * 2, cell.transistor_count(), "N/P imbalance in {kind}");
        }
    }

    #[test]
    #[should_panic(expected = "tie cells")]
    fn const_has_no_schematic() {
        let _ = CmosCell::for_gate(GateKind::Const(true));
    }

    #[test]
    fn display_mentions_kind() {
        let cell = CmosCell::for_gate(GateKind::Oai22);
        assert!(cell.to_string().contains("OAI22"));
        assert!(cell.to_string().contains("8 transistors"));
    }

    #[test]
    fn stage_accessors() {
        let cell = CmosCell::for_gate(GateKind::Xor2);
        assert_eq!(cell.stages().len(), 3);
        assert_eq!(cell.stages()[2].name(), "xor-core");
        assert_eq!(cell.stages()[2].num_nodes(), 7);
        assert!(cell.stages()[0].bridges().is_empty());
        let t = &cell.stages()[0].transistors()[0];
        assert_eq!(t.polarity(), Polarity::Pmos);
        assert_eq!(t.terminals(), (VDD, OUT));
        assert_eq!(t.health(), Health::Healthy);
        assert!(!t.is_delayed());
    }

    #[test]
    fn schematic_text_lists_devices_and_defects() {
        let mut cell = CmosCell::for_gate(GateKind::Nand2);
        cell.inject(crate::Defect::Open {
            stage: 0,
            transistor: 2,
        })
        .unwrap();
        cell.inject(crate::Defect::Bridge {
            stage: 0,
            a: 0,
            b: 2,
        })
        .unwrap();
        let text = cell.schematic_text();
        assert!(text.contains("stage 0 (nand-core):"));
        assert!(text.contains("PMOS gate=pin 0 Vdd--Z"));
        assert!(text.contains("[OPEN]"));
        assert!(text.contains("bridge: Vdd ~ Z"));
    }
}
