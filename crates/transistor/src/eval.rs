//! Switch-level evaluation of (possibly defective) CMOS cells with
//! B-block resolution.

use dta_logic::gate::GateBehavior;

use crate::cell::{CmosCell, Health, Polarity, Signal, OUT, VDD, VSS};

/// A CMOS cell instance evaluated at the switch level, including any
/// injected defects. Implements [`GateBehavior`] so it can replace a gate
/// inside a `dta-logic` netlist.
///
/// Evaluation per stage:
///
/// 1. each transistor conducts according to its gate signal, polarity and
///    health (opens never conduct, source–drain shorts always conduct;
///    delayed gate lines see the *previous* signal value);
/// 2. injected bridges add unconditional connections between nets;
/// 3. `Z_P` = is the stage output connected to Vdd, `Z_N` = to Vss, via a
///    flood fill over the conducting-switch graph;
/// 4. B-block resolution: `Z_N` ⇒ 0 (ground dominates), else `Z_P` ⇒ 1,
///    else the stage *retains its previous value* (memory effect —
///    asymmetric N/P networks turn the gate into a state element).
///
/// A defect-free cell never exercises rule 4 and is combinational; the
/// exhaustive library tests below verify it matches
/// [`dta_logic::GateKind::eval`] bit for bit.
///
/// # Example
///
/// ```
/// use dta_logic::gate::{GateBehavior, GateKind};
/// use dta_transistor::{CmosCell, FaultyCell};
///
/// let mut healthy = FaultyCell::new(CmosCell::for_gate(GateKind::Xor2));
/// assert!(healthy.eval(&[true, false]));
/// assert!(!healthy.eval(&[true, true]));
/// ```
#[derive(Clone, Debug)]
pub struct FaultyCell {
    cell: CmosCell,
    /// Previous output of each stage (for the memory effect).
    stage_mem: Vec<bool>,
    /// Previous gate-signal value of each transistor (for delay faults),
    /// flattened per stage.
    delay_prev: Vec<Vec<bool>>,
    /// Scratch output of each stage during one evaluation.
    stage_out: Vec<bool>,
    /// Scratch flood-fill mark buffer.
    marks: Vec<u8>,
}

impl FaultyCell {
    /// Wraps a (possibly defect-injected) schematic into an evaluator.
    pub fn new(cell: CmosCell) -> FaultyCell {
        let stage_mem = vec![false; cell.stages().len()];
        let delay_prev = cell
            .stages()
            .iter()
            .map(|s| vec![false; s.transistors().len()])
            .collect();
        let stage_out = vec![false; cell.stages().len()];
        FaultyCell {
            cell,
            stage_mem,
            delay_prev,
            stage_out,
            marks: Vec::new(),
        }
    }

    /// The underlying schematic.
    pub fn cell(&self) -> &CmosCell {
        &self.cell
    }

    /// Installs externally held state (stage memories + delay lines), so
    /// a cell materialized per evaluation under dynamic activation
    /// carries its history across defect-subset changes.
    pub(crate) fn set_state(&mut self, stage_mem: Vec<bool>, delay_prev: Vec<Vec<bool>>) {
        assert_eq!(stage_mem.len(), self.stage_mem.len());
        assert_eq!(delay_prev.len(), self.delay_prev.len());
        for (d, s) in delay_prev.iter().zip(&self.delay_prev) {
            assert_eq!(d.len(), s.len());
        }
        self.stage_mem = stage_mem;
        self.delay_prev = delay_prev;
    }

    /// Extracts the evaluation state for re-installation into the next
    /// materialized cell.
    pub(crate) fn take_state(self) -> (Vec<bool>, Vec<Vec<bool>>) {
        (self.stage_mem, self.delay_prev)
    }

    /// Evaluates one stage given resolved gate-signal values, returning
    /// `(z_p, z_n)` connectivity.
    fn stage_connectivity(
        stage: &crate::cell::Stage,
        sig_of: impl Fn(Signal) -> bool,
        delay_prev: &mut [bool],
        marks: &mut Vec<u8>,
    ) -> (bool, bool) {
        let n = stage.num_nodes();
        // Adjacency as a small edge list; stages have <= 12 switches.
        let mut edges: Vec<(usize, usize)> = Vec::with_capacity(16);
        for (ti, t) in stage.transistors().iter().enumerate() {
            let raw = sig_of(t.gate());
            // Delay lines sample *every* evaluation, not just while the
            // transistor is marked delayed: a defect that becomes delayed
            // mid-sequence (dynamic activation) must read the true
            // previous signal, not a stale snapshot. For statically
            // injected cells this is behaviorally identical.
            let prev = delay_prev[ti];
            delay_prev[ti] = raw;
            let g = if t.is_delayed() { prev } else { raw };
            let conducts = match t.health() {
                Health::Open => false,
                Health::Shorted => true,
                Health::Healthy => match t.polarity() {
                    Polarity::Nmos => g,
                    Polarity::Pmos => !g,
                },
            };
            if conducts {
                let (a, b) = t.terminals();
                edges.push((a, b));
            }
        }
        edges.extend(stage.bridges().iter().copied());

        // Flood fill from VDD (mark 1) and VSS (mark 2) simultaneously;
        // a node reachable from both carries mark 3.
        marks.clear();
        marks.resize(n, 0);
        for (start, bit) in [(VDD, 1u8), (VSS, 2u8)] {
            let mut stack = vec![start];
            marks[start] |= bit;
            while let Some(v) = stack.pop() {
                for &(a, b) in &edges {
                    let w = if a == v {
                        b
                    } else if b == v {
                        a
                    } else {
                        continue;
                    };
                    if marks[w] & bit == 0 {
                        marks[w] |= bit;
                        stack.push(w);
                    }
                }
            }
        }
        (marks[OUT] & 1 != 0, marks[OUT] & 2 != 0)
    }

    /// Evaluates the cell for one input vector, updating internal state
    /// (stage memories and delay lines).
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from the cell's pin count.
    pub fn eval_cell(&mut self, inputs: &[bool]) -> bool {
        assert_eq!(
            inputs.len(),
            self.cell.kind().arity(),
            "{} expects {} inputs",
            self.cell.kind(),
            self.cell.kind().arity()
        );
        let n_stages = self.cell.stages().len();
        for si in 0..n_stages {
            let stage = &self.cell.stages()[si];
            let stage_out_prefix: &[bool] = &self.stage_out[..si];
            let sig_of = |s: Signal| match s {
                Signal::Pin(k) => inputs[k],
                Signal::Stage(j) => stage_out_prefix[j],
            };
            let (zp, zn) =
                Self::stage_connectivity(stage, sig_of, &mut self.delay_prev[si], &mut self.marks);
            let out = if zn {
                false // the path from ground dominates
            } else if zp {
                true
            } else {
                self.stage_mem[si] // memory effect
            };
            self.stage_mem[si] = out;
            self.stage_out[si] = out;
        }
        self.stage_out[n_stages - 1]
    }
}

impl GateBehavior for FaultyCell {
    fn eval(&mut self, inputs: &[bool]) -> bool {
        self.eval_cell(inputs)
    }

    fn reset(&mut self) {
        for m in &mut self.stage_mem {
            *m = false;
        }
        for v in &mut self.delay_prev {
            for p in v.iter_mut() {
                *p = false;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::defect::Defect;
    use dta_logic::GateKind;

    fn all_input_vectors(arity: usize) -> Vec<Vec<bool>> {
        (0..1u32 << arity)
            .map(|bits| (0..arity).map(|i| bits >> i & 1 == 1).collect())
            .collect()
    }

    #[test]
    fn healthy_cells_match_library_exhaustively() {
        for kind in GateKind::ALL {
            let mut cell = FaultyCell::new(CmosCell::for_gate(kind));
            for v in all_input_vectors(kind.arity()) {
                assert_eq!(
                    cell.eval_cell(&v),
                    kind.eval(&v),
                    "{kind} disagrees on {v:?}"
                );
            }
            // Second pass in reverse order: healthy cells are stateless.
            for v in all_input_vectors(kind.arity()).into_iter().rev() {
                assert_eq!(cell.eval_cell(&v), kind.eval(&v));
            }
        }
    }

    #[test]
    fn open_breaks_pulldown_of_nand() {
        // Open the first N transistor of NAND2: the series pull-down is
        // dead, so the output can never be driven low; at (1,1) neither
        // network conducts -> memory effect keeps the last driven value.
        let mut cell = CmosCell::for_gate(GateKind::Nand2);
        let nmos = cell.stages()[0]
            .transistors()
            .iter()
            .position(|t| t.is_nmos())
            .unwrap();
        cell.inject(Defect::Open {
            stage: 0,
            transistor: nmos,
        })
        .unwrap();
        let mut f = FaultyCell::new(cell);
        assert!(f.eval_cell(&[false, false])); // healthy: pull-up drives 1
        assert!(f.eval_cell(&[true, true]), "retains 1 via memory effect");
    }

    #[test]
    fn paper_example_memory_effect_on_oai22() {
        // Paper §III-B: open at the drain of the first pull-up transistor
        // of the (a+b)(c+d) complex gate. With a=b=0, c=d=1 the healthy
        // pull-up would drive 1 through the broken path; the N network is
        // off too, so the faulty gate floats and keeps its old output.
        let mut cell = CmosCell::for_gate(GateKind::Oai22);
        // Transistor 4 is the first P device (gate a, VDD side).
        assert_eq!(cell.stages()[0].transistors()[4].polarity(), Polarity::Pmos);
        cell.inject(Defect::Open {
            stage: 0,
            transistor: 4,
        })
        .unwrap();
        let mut f = FaultyCell::new(cell);
        // Drive an input that forces output 0 first (remembered value 0).
        assert!(!f.eval_cell(&[true, false, true, false]));
        // a=b=0, c=d=1: healthy OAI22 = !((0|0)&(1|1)) = 1, faulty floats.
        assert!(!f.eval_cell(&[false, false, true, true]), "retains 0");
        // Drive 1 through the intact c/d pull-up path: c=d=0 forces
        // !((a|b)&0) = 1 via the second branch.
        assert!(f.eval_cell(&[false, false, false, false]));
        // Same floating input now retains 1.
        assert!(f.eval_cell(&[false, false, true, true]), "retains 1");
    }

    #[test]
    fn ground_dominates_when_both_networks_conduct() {
        // Short the second pull-up of OAI22 (gate b). For a=0,b=1,c=d=1
        // the pull-up conducts through p(a)+short while the pull-down
        // also conducts; B-block says the output is 0.
        let mut cell = CmosCell::for_gate(GateKind::Oai22);
        assert_eq!(cell.stages()[0].transistors()[5].polarity(), Polarity::Pmos);
        cell.inject(Defect::Short {
            stage: 0,
            transistor: 5,
        })
        .unwrap();
        let mut f = FaultyCell::new(cell);
        assert!(!f.eval_cell(&[false, true, true, true]));
        // And the changed pull-up function now drives 1 where the healthy
        // gate would have: a=0,b=1,c=1,d=0 -> healthy !(1&1)=0... pull-down
        // conducts, still 0. Check a case where only pull-up changed:
        // a=0,b=1,c=0,d=0: healthy = !((0|1)&0) = 1, faulty also 1.
        assert!(f.eval_cell(&[false, true, false, false]));
    }

    #[test]
    fn bridge_to_ground_sticks_output_low() {
        let mut cell = CmosCell::for_gate(GateKind::Not);
        cell.inject(Defect::Bridge {
            stage: 0,
            a: VSS,
            b: OUT,
        })
        .unwrap();
        let mut f = FaultyCell::new(cell);
        assert!(!f.eval_cell(&[false]), "bridged to ground");
        assert!(!f.eval_cell(&[true]));
    }

    #[test]
    fn bridge_to_vdd_loses_to_ground() {
        // Vdd-OUT bridge: output 1 when input 0 (as healthy), but for
        // input 1 both rails connect and ground still wins -> healthy
        // inverter behavior survives this particular bridge.
        let mut cell = CmosCell::for_gate(GateKind::Not);
        cell.inject(Defect::Bridge {
            stage: 0,
            a: VDD,
            b: OUT,
        })
        .unwrap();
        let mut f = FaultyCell::new(cell);
        assert!(f.eval_cell(&[false]));
        assert!(!f.eval_cell(&[true]));
    }

    #[test]
    fn delay_fault_shifts_transitions() {
        // Delay the N transistor of an inverter. On a 0->1 input step the
        // pull-down still sees the old 0, the pull-up sees the new 1:
        // neither conducts, so the output lags one evaluation.
        let mut cell = CmosCell::for_gate(GateKind::Not);
        let nmos = cell.stages()[0]
            .transistors()
            .iter()
            .position(|t| t.is_nmos())
            .unwrap();
        cell.inject(Defect::Delay {
            stage: 0,
            transistor: nmos,
        })
        .unwrap();
        let mut f = FaultyCell::new(cell);
        assert!(f.eval_cell(&[false])); // settles at 1
        assert!(f.eval_cell(&[true]), "transition lags: still 1");
        assert!(!f.eval_cell(&[true]), "one evaluation later it falls");
    }

    #[test]
    fn reset_clears_memory_and_delays() {
        let mut cell = CmosCell::for_gate(GateKind::Nand2);
        let nmos = cell.stages()[0]
            .transistors()
            .iter()
            .position(|t| t.is_nmos())
            .unwrap();
        cell.inject(Defect::Open {
            stage: 0,
            transistor: nmos,
        })
        .unwrap();
        let mut f = FaultyCell::new(cell);
        assert!(f.eval_cell(&[false, false]));
        assert!(f.eval_cell(&[true, true]), "memory holds 1");
        f.reset();
        // After reset the floating state falls back to the power-on 0.
        assert!(!f.eval_cell(&[true, true]));
    }

    #[test]
    fn defective_xor_changes_function_not_just_stuck() {
        // Short one pull-down of the XOR core: the output is no longer a
        // pure XOR nor a constant — the logic *function changed*, which is
        // exactly what gate-level stuck-at models cannot express.
        let mut cell = CmosCell::for_gate(GateKind::Xor2);
        cell.inject(Defect::Short {
            stage: 2,
            transistor: 1,
        })
        .unwrap();
        let mut f = FaultyCell::new(cell);
        let truth: Vec<bool> = all_input_vectors(2)
            .iter()
            .map(|v| f.eval_cell(v))
            .collect();
        let healthy: Vec<bool> = all_input_vectors(2)
            .iter()
            .map(|v| GateKind::Xor2.eval(v))
            .collect();
        assert_ne!(truth, healthy, "function must differ somewhere");
        assert!(
            truth.iter().any(|&b| b) && truth.iter().any(|&b| !b),
            "but it is not simply stuck at a constant: {truth:?}"
        );
    }

    #[test]
    #[should_panic(expected = "expects 2 inputs")]
    fn wrong_arity_panics() {
        let mut f = FaultyCell::new(CmosCell::for_gate(GateKind::Nand2));
        let _ = f.eval_cell(&[true]);
    }
}
