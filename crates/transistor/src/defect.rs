//! Transistor-level defect types, site enumeration, and injection —
//! plus the fault-lifetime dimension ([`Activation`]) that decides
//! *when* an injected defect is electrically present.

use std::fmt;

use rand::seq::IndexedRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::cell::{CmosCell, Health};

/// The lifetime of an injected defect: when is it electrically active?
///
/// The paper models only **permanent** manufacturing defects; real
/// silicon also suffers **transient** upsets (particle strikes, supply
/// glitches — active for single evaluations, at random) and
/// **intermittent** faults (marginal devices that come and go with
/// temperature/voltage cycles — active for bursts with a duty cycle).
/// Every injection site can carry any of the three lifetimes; the
/// *site* taxonomy ([`Defect`]) is orthogonal to the *lifetime*
/// taxonomy.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Activation {
    /// Always active — the paper's manufacturing-defect model.
    Permanent,
    /// Active on any given evaluation independently with the given
    /// probability, drawn from a dedicated per-defect ChaCha8 stream
    /// (so campaigns stay bit-deterministic at any thread count).
    Transient {
        /// Probability, in `[0, 1]`, that the defect is present on one
        /// evaluation of its cell.
        per_eval_probability: f64,
    },
    /// Periodically active: out of every `period` evaluations, the
    /// first `duty` have the defect present.
    Intermittent {
        /// Cycle length in evaluations (must be at least 1).
        period: u32,
        /// Active evaluations per cycle (must not exceed `period`).
        duty: u32,
    },
}

impl Activation {
    /// True for the paper's always-active lifetime.
    pub fn is_permanent(&self) -> bool {
        matches!(self, Activation::Permanent)
    }

    /// Validates the lifetime's parameters, returning the activation
    /// unchanged when they are sound.
    ///
    /// # Errors
    ///
    /// [`ActivationError::BadProbability`] for a transient probability
    /// outside `[0, 1]` (NaN included); [`ActivationError::BadCycle`]
    /// for an intermittent cycle with `period == 0` or `duty > period`.
    pub fn validate(self) -> Result<Activation, ActivationError> {
        match self {
            Activation::Transient {
                per_eval_probability,
            } if !(0.0..=1.0).contains(&per_eval_probability) => {
                Err(ActivationError::BadProbability {
                    per_eval_probability,
                })
            }
            Activation::Intermittent { period, duty } if period == 0 || duty > period => {
                Err(ActivationError::BadCycle { period, duty })
            }
            ok => Ok(ok),
        }
    }
}

/// Why a fault-lifetime parameterisation was rejected at construction.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ActivationError {
    /// A transient per-evaluation probability outside `[0, 1]`.
    BadProbability {
        /// The offending probability (possibly NaN).
        per_eval_probability: f64,
    },
    /// An intermittent cycle with `period == 0` or `duty > period`.
    BadCycle {
        /// Cycle length in evaluations.
        period: u32,
        /// Active evaluations per cycle.
        duty: u32,
    },
}

impl fmt::Display for ActivationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ActivationError::BadProbability {
                per_eval_probability,
            } => write!(
                f,
                "transient probability {per_eval_probability} outside [0, 1]"
            ),
            ActivationError::BadCycle { period, duty } => {
                write!(f, "intermittent duty {duty}/{period} is not a valid cycle")
            }
        }
    }
}

impl std::error::Error for ActivationError {}

impl fmt::Display for Activation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Activation::Permanent => write!(f, "permanent"),
            Activation::Transient {
                per_eval_probability,
            } => write!(f, "transient(p={per_eval_probability})"),
            Activation::Intermittent { period, duty } => {
                write!(f, "intermittent({duty}/{period})")
            }
        }
    }
}

/// The per-defect state machine deciding, evaluation by evaluation,
/// whether its defect is active. Deterministic given `(activation,
/// seed)`; [`ActivationState::reset`] returns it to the power-on state
/// so independent runs reproduce.
#[derive(Clone, Debug)]
pub struct ActivationState {
    activation: Activation,
    seed: u64,
    rng: ChaCha8Rng,
    tick: u64,
}

impl ActivationState {
    /// Builds the state machine for one defect.
    ///
    /// # Panics
    ///
    /// Panics if a transient probability is outside `[0, 1]`, or an
    /// intermittent period is 0 or smaller than its duty. Use
    /// [`ActivationState::try_new`] for a typed error instead.
    pub fn new(activation: Activation, seed: u64) -> ActivationState {
        match ActivationState::try_new(activation, seed) {
            Ok(state) => state,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible constructor: validates the lifetime's parameters and
    /// returns a typed error instead of panicking.
    ///
    /// # Errors
    ///
    /// See [`Activation::validate`].
    pub fn try_new(activation: Activation, seed: u64) -> Result<ActivationState, ActivationError> {
        let activation = activation.validate()?;
        Ok(ActivationState {
            activation,
            seed,
            rng: ChaCha8Rng::seed_from_u64(seed),
            tick: 0,
        })
    }

    /// The lifetime this state machine implements.
    pub fn activation(&self) -> Activation {
        self.activation
    }

    /// Advances one evaluation and reports whether the defect is active
    /// for it.
    pub fn advance(&mut self) -> bool {
        match self.activation {
            Activation::Permanent => true,
            Activation::Transient {
                per_eval_probability,
            } => self.rng.random_bool(per_eval_probability),
            Activation::Intermittent { period, duty } => {
                let phase = self.tick % u64::from(period);
                self.tick += 1;
                phase < u64::from(duty)
            }
        }
    }

    /// Returns to the power-on state (restarts the transient stream and
    /// the intermittent cycle), so repeated runs see identical
    /// activation sequences.
    pub fn reset(&mut self) {
        self.rng = ChaCha8Rng::seed_from_u64(self.seed);
        self.tick = 0;
    }
}

/// A physical defect inside one CMOS cell.
///
/// The two fundamental silicon failure mechanisms are **shorts**
/// (insufficient metal removed) and **opens** (excess removed); following
/// the paper they manifest at the switch level as:
///
/// * [`Defect::Open`] — a full open at a transistor's drain or source:
///   its conduction path is stuck off. (Drain opens and source opens are
///   electrically equivalent in a switch-level model, so one variant
///   covers both.)
/// * [`Defect::Short`] — a source–drain short: the path is stuck on.
/// * [`Defect::Bridge`] — a short between two nets of the same stage
///   (e.g. the drains of two neighbouring transistors). Bridges can
///   rewrite the gate's logic function and break N/P symmetry.
/// * [`Defect::Delay`] — a partial short/open or a gate-terminal short:
///   the transistor's gate line becomes a state element that propagates
///   its value one transition late.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Defect {
    /// Drain/source full open on transistor `transistor` of `stage`.
    Open {
        /// Stage index within the cell.
        stage: usize,
        /// Transistor index within the stage.
        transistor: usize,
    },
    /// Source–drain short on a transistor: conduction path stuck on.
    Short {
        /// Stage index within the cell.
        stage: usize,
        /// Transistor index within the stage.
        transistor: usize,
    },
    /// Delay on a transistor's gate line (state element on the line).
    Delay {
        /// Stage index within the cell.
        stage: usize,
        /// Transistor index within the stage.
        transistor: usize,
    },
    /// Short between net nodes `a` and `b` of `stage`.
    Bridge {
        /// Stage index within the cell.
        stage: usize,
        /// First net node.
        a: usize,
        /// Second net node.
        b: usize,
    },
}

impl fmt::Display for Defect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Defect::Open { stage, transistor } => {
                write!(f, "open at t{transistor} of stage {stage}")
            }
            Defect::Short { stage, transistor } => {
                write!(f, "source-drain short at t{transistor} of stage {stage}")
            }
            Defect::Delay { stage, transistor } => {
                write!(f, "delayed gate line at t{transistor} of stage {stage}")
            }
            Defect::Bridge { stage, a, b } => {
                write!(f, "bridge between nets {a} and {b} of stage {stage}")
            }
        }
    }
}

/// Error returned when a defect does not fit the target cell.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DefectError {
    /// The stage index is out of range.
    NoSuchStage {
        /// Offending index.
        stage: usize,
        /// Stages in the cell.
        available: usize,
    },
    /// The transistor index is out of range for the stage.
    NoSuchTransistor {
        /// Stage index.
        stage: usize,
        /// Offending transistor index.
        transistor: usize,
    },
    /// A bridge references a missing net node or connects a node to
    /// itself.
    BadBridge {
        /// Stage index.
        stage: usize,
        /// First net node.
        a: usize,
        /// Second net node.
        b: usize,
    },
}

impl fmt::Display for DefectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DefectError::NoSuchStage { stage, available } => {
                write!(f, "stage {stage} does not exist (cell has {available})")
            }
            DefectError::NoSuchTransistor { stage, transistor } => {
                write!(f, "transistor {transistor} does not exist in stage {stage}")
            }
            DefectError::BadBridge { stage, a, b } => {
                write!(f, "invalid bridge ({a},{b}) in stage {stage}")
            }
        }
    }
}

impl std::error::Error for DefectError {}

impl CmosCell {
    /// Enumerates every defect site of the cell: per transistor an open,
    /// a short and a delay; per stage a bridge between every unordered
    /// pair of net nodes (the paper does not model layout adjacency, and
    /// neither do we — every intra-stage pair is a candidate).
    pub fn defect_sites(&self) -> Vec<Defect> {
        let mut sites = Vec::new();
        for (si, stage) in self.stages().iter().enumerate() {
            for ti in 0..stage.transistors().len() {
                sites.push(Defect::Open {
                    stage: si,
                    transistor: ti,
                });
                sites.push(Defect::Short {
                    stage: si,
                    transistor: ti,
                });
                sites.push(Defect::Delay {
                    stage: si,
                    transistor: ti,
                });
            }
            for a in 0..stage.num_nodes() {
                for b in (a + 1)..stage.num_nodes() {
                    sites.push(Defect::Bridge { stage: si, a, b });
                }
            }
        }
        sites
    }

    /// Draws one uniformly random defect site.
    pub fn random_defect<R: Rng + ?Sized>(&self, rng: &mut R) -> Defect {
        *self
            .defect_sites()
            .choose(rng)
            .expect("every non-tie cell has defect sites")
    }

    /// Applies a defect to the schematic.
    ///
    /// # Errors
    ///
    /// Returns [`DefectError`] if the defect references a stage,
    /// transistor or net node that does not exist in this cell.
    pub fn inject(&mut self, defect: Defect) -> Result<(), DefectError> {
        let n_stages = self.stages().len();
        let check_stage = |stage: usize| {
            if stage >= n_stages {
                Err(DefectError::NoSuchStage {
                    stage,
                    available: n_stages,
                })
            } else {
                Ok(())
            }
        };
        match defect {
            Defect::Open { stage, transistor }
            | Defect::Short { stage, transistor }
            | Defect::Delay { stage, transistor } => {
                check_stage(stage)?;
                let st = &mut self.stages_mut()[stage];
                let t = st
                    .transistors
                    .get_mut(transistor)
                    .ok_or(DefectError::NoSuchTransistor { stage, transistor })?;
                match defect {
                    Defect::Open { .. } => t.health = Health::Open,
                    Defect::Short { .. } => t.health = Health::Shorted,
                    Defect::Delay { .. } => t.delayed = true,
                    Defect::Bridge { .. } => unreachable!(),
                }
            }
            Defect::Bridge { stage, a, b } => {
                check_stage(stage)?;
                let st = &mut self.stages_mut()[stage];
                if a == b || a >= st.num_nodes || b >= st.num_nodes {
                    return Err(DefectError::BadBridge { stage, a, b });
                }
                st.bridges.push((a, b));
            }
        }
        Ok(())
    }

    /// Convenience: injects several defects, stopping at the first error.
    ///
    /// # Errors
    ///
    /// Propagates the first [`DefectError`].
    pub fn inject_all(
        &mut self,
        defects: impl IntoIterator<Item = Defect>,
    ) -> Result<(), DefectError> {
        for d in defects {
            self.inject(d)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dta_logic::GateKind;
    use rand::SeedableRng;

    #[test]
    fn site_count_inverter() {
        // 2 transistors x 3 defect kinds + C(3,2) bridges = 6 + 3 = 9.
        let cell = CmosCell::for_gate(GateKind::Not);
        assert_eq!(cell.defect_sites().len(), 9);
    }

    #[test]
    fn site_count_oai22() {
        // 8 transistors x 3 + C(6,2) bridges = 24 + 15 = 39.
        let cell = CmosCell::for_gate(GateKind::Oai22);
        assert_eq!(cell.defect_sites().len(), 39);
    }

    #[test]
    fn inject_marks_transistor() {
        let mut cell = CmosCell::for_gate(GateKind::Nand2);
        cell.inject(Defect::Open {
            stage: 0,
            transistor: 1,
        })
        .unwrap();
        assert_eq!(cell.stages()[0].transistors()[1].health(), Health::Open);
        cell.inject(Defect::Short {
            stage: 0,
            transistor: 0,
        })
        .unwrap();
        assert_eq!(cell.stages()[0].transistors()[0].health(), Health::Shorted);
        cell.inject(Defect::Delay {
            stage: 0,
            transistor: 2,
        })
        .unwrap();
        assert!(cell.stages()[0].transistors()[2].is_delayed());
    }

    #[test]
    fn inject_bridge_records_pair() {
        let mut cell = CmosCell::for_gate(GateKind::Nor2);
        cell.inject(Defect::Bridge {
            stage: 0,
            a: 0,
            b: 2,
        })
        .unwrap();
        assert_eq!(cell.stages()[0].bridges(), &[(0, 2)]);
    }

    #[test]
    fn bad_defects_rejected() {
        let mut cell = CmosCell::for_gate(GateKind::Not);
        assert!(matches!(
            cell.inject(Defect::Open {
                stage: 5,
                transistor: 0
            }),
            Err(DefectError::NoSuchStage { .. })
        ));
        assert!(matches!(
            cell.inject(Defect::Short {
                stage: 0,
                transistor: 9
            }),
            Err(DefectError::NoSuchTransistor { .. })
        ));
        assert!(matches!(
            cell.inject(Defect::Bridge {
                stage: 0,
                a: 1,
                b: 1
            }),
            Err(DefectError::BadBridge { .. })
        ));
        assert!(matches!(
            cell.inject(Defect::Bridge {
                stage: 0,
                a: 0,
                b: 99
            }),
            Err(DefectError::BadBridge { .. })
        ));
    }

    #[test]
    fn random_defect_is_a_valid_site() {
        let cell = CmosCell::for_gate(GateKind::Xor2);
        let sites = cell.defect_sites();
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            let d = cell.random_defect(&mut rng);
            assert!(sites.contains(&d));
            let mut c = cell.clone();
            c.inject(d).unwrap();
        }
    }

    #[test]
    fn inject_all_propagates_errors() {
        let mut cell = CmosCell::for_gate(GateKind::Not);
        let res = cell.inject_all([
            Defect::Open {
                stage: 0,
                transistor: 0,
            },
            Defect::Open {
                stage: 9,
                transistor: 0,
            },
        ]);
        assert!(res.is_err());
    }

    #[test]
    fn activation_state_sequences() {
        let mut p = ActivationState::new(Activation::Permanent, 1);
        assert!((0..10).all(|_| p.advance()));

        let mut i = ActivationState::new(Activation::Intermittent { period: 4, duty: 2 }, 1);
        let seq: Vec<bool> = (0..8).map(|_| i.advance()).collect();
        assert_eq!(seq, [true, true, false, false, true, true, false, false]);
        i.reset();
        assert!(i.advance(), "reset restarts the cycle");

        let mut never = ActivationState::new(
            Activation::Transient {
                per_eval_probability: 0.0,
            },
            7,
        );
        assert!((0..50).all(|_| !never.advance()));
        let mut always = ActivationState::new(
            Activation::Transient {
                per_eval_probability: 1.0,
            },
            7,
        );
        assert!((0..50).all(|_| always.advance()));
    }

    #[test]
    fn transient_streams_are_seeded_and_resettable() {
        let act = Activation::Transient {
            per_eval_probability: 0.5,
        };
        let mut a = ActivationState::new(act, 42);
        let mut b = ActivationState::new(act, 42);
        let sa: Vec<bool> = (0..64).map(|_| a.advance()).collect();
        let sb: Vec<bool> = (0..64).map(|_| b.advance()).collect();
        assert_eq!(sa, sb, "same seed, same stream");
        assert!(sa.iter().any(|&x| x) && sa.iter().any(|&x| !x));
        a.reset();
        let again: Vec<bool> = (0..64).map(|_| a.advance()).collect();
        assert_eq!(sa, again, "reset replays the stream");
        let mut c = ActivationState::new(act, 43);
        let sc: Vec<bool> = (0..64).map(|_| c.advance()).collect();
        assert_ne!(sa, sc, "different seeds diverge");
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn bad_transient_probability_rejected() {
        let _ = ActivationState::new(
            Activation::Transient {
                per_eval_probability: 1.5,
            },
            0,
        );
    }

    #[test]
    #[should_panic(expected = "not a valid cycle")]
    fn bad_intermittent_cycle_rejected() {
        let _ = ActivationState::new(Activation::Intermittent { period: 2, duty: 3 }, 0);
    }

    #[test]
    fn try_new_returns_typed_errors() {
        for p in [-0.1, 1.5, f64::NAN] {
            let err = ActivationState::try_new(
                Activation::Transient {
                    per_eval_probability: p,
                },
                0,
            )
            .unwrap_err();
            assert!(matches!(err, ActivationError::BadProbability { .. }), "{p}");
        }
        for (period, duty) in [(0u32, 0u32), (0, 1), (2, 3)] {
            let err =
                ActivationState::try_new(Activation::Intermittent { period, duty }, 0).unwrap_err();
            assert_eq!(err, ActivationError::BadCycle { period, duty });
            assert!(err.to_string().contains("not a valid cycle"));
        }
        assert!(ActivationState::try_new(Activation::Permanent, 0).is_ok());
        assert!(Activation::Intermittent { period: 4, duty: 4 }
            .validate()
            .is_ok());
        assert!(Activation::Intermittent { period: 4, duty: 0 }
            .validate()
            .is_ok());
    }

    #[test]
    fn intermittent_zero_duty_never_fires() {
        // duty = 0 is a valid (if degenerate) cycle: the defect exists
        // but is never electrically present.
        let mut s = ActivationState::new(Activation::Intermittent { period: 7, duty: 0 }, 3);
        assert!((0..100).all(|_| !s.advance()));
        s.reset();
        assert!((0..100).all(|_| !s.advance()));
    }

    #[test]
    fn intermittent_full_duty_matches_permanent() {
        // duty = period is effectively permanent: active on every single
        // evaluation, including across resets.
        let mut full = ActivationState::new(Activation::Intermittent { period: 9, duty: 9 }, 5);
        let mut perm = ActivationState::new(Activation::Permanent, 5);
        let sf: Vec<bool> = (0..100).map(|_| full.advance()).collect();
        let sp: Vec<bool> = (0..100).map(|_| perm.advance()).collect();
        assert_eq!(sf, sp);
        assert!(sf.iter().all(|&x| x));
        full.reset();
        assert!((0..100).all(|_| full.advance()));
    }

    #[test]
    fn display_nonempty() {
        assert!(Defect::Bridge {
            stage: 0,
            a: 1,
            b: 2
        }
        .to_string()
        .contains("bridge"));
        assert!(DefectError::NoSuchStage {
            stage: 1,
            available: 1
        }
        .to_string()
        .contains("stage 1"));
        assert_eq!(Activation::Permanent.to_string(), "permanent");
        assert!(Activation::Transient {
            per_eval_probability: 0.25
        }
        .to_string()
        .contains("0.25"));
        assert!(Activation::Intermittent {
            period: 16,
            duty: 3
        }
        .to_string()
        .contains("3/16"));
    }
}
