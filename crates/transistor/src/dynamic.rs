//! Evaluation of cells whose defects come and go: the dynamic
//! counterpart of [`CachedCell`]/[`FaultyCell`].
//!
//! A dynamic cell owns a *base* schematic (healthy, or carrying
//! permanent defects) plus a list of [`DynamicDefect`]s, each paired
//! with an [`ActivationState`] that decides per evaluation whether the
//! defect is electrically present. Every evaluation first advances all
//! activation state machines, producing a bitmask over the dynamic
//! defects — the **currently-active defect subset** — and then
//! evaluates the cell that subset describes.
//!
//! [`DynamicCell`] keys compiled [`CellTable`]s by that mask: mask 0
//! (no dynamic defect active) takes a pre-stored fast path to the base
//! table, other masks hit a per-cell map backed by the process-wide
//! table memo. Stage memories and the previous-signal vector persist
//! *across* table swaps — the silicon keeps its charge when a transient
//! ends — which is exactly why [`FaultyCell`]'s delay lines sample on
//! every evaluation. When every subset of the dynamic defects yields a
//! purely combinational table, the walk is skipped entirely and
//! evaluation is a single truth-table lookup.
//!
//! [`DynamicRefCell`] is the uncached reference: it re-materializes the
//! active-subset schematic each evaluation and runs the switch-level
//! flood fill, carrying the same persistent state. The tests at the
//! bottom pin the two against each other exhaustively, per activation
//! class, over every library cell and defect site.

use std::collections::HashMap;
use std::sync::Arc;

use dta_logic::gate::GateBehavior;

use crate::cell::CmosCell;
use crate::defect::{Activation, ActivationState, Defect, DefectError};
use crate::eval::FaultyCell;
use crate::table::CellTable;

/// Cap on dynamic defects per cell: masks are `u32` bit positions and
/// campaigns inject at most a handful per cell.
const MAX_DYNAMIC: usize = 16;

/// One dynamically activated defect: an injection site plus the state
/// machine deciding when it is present.
#[derive(Clone, Debug)]
pub struct DynamicDefect {
    defect: Defect,
    state: ActivationState,
}

impl DynamicDefect {
    /// Pairs a defect site with a lifetime; `seed` feeds the transient
    /// Bernoulli stream (ignored by the other classes but kept so the
    /// pairing is deterministic data).
    pub fn new(defect: Defect, activation: Activation, seed: u64) -> DynamicDefect {
        DynamicDefect {
            defect,
            state: ActivationState::new(activation, seed),
        }
    }

    /// The injection site.
    pub fn defect(&self) -> Defect {
        self.defect
    }

    /// The lifetime class.
    pub fn activation(&self) -> Activation {
        self.state.activation()
    }
}

/// Advances every activation state machine one evaluation and packs the
/// active defects into a subset mask (bit `i` = defect `i` active).
fn advance_mask(dynamic: &mut [DynamicDefect]) -> u32 {
    let mut mask = 0u32;
    for (i, d) in dynamic.iter_mut().enumerate() {
        if d.state.advance() {
            mask |= 1 << i;
        }
    }
    mask
}

/// The schematic for one active subset: base plus the masked-in dynamic
/// defects, injected in list order (later writes win on a shared site,
/// matching repeated static injection).
fn materialize(base: &CmosCell, dynamic: &[DynamicDefect], mask: u32) -> CmosCell {
    let mut cell = base.clone();
    for (i, d) in dynamic.iter().enumerate() {
        if mask >> i & 1 == 1 {
            cell.inject(d.defect)
                .expect("dynamic defect sites are validated at construction");
        }
    }
    cell
}

/// Validates that every dynamic defect references a real site of `base`
/// (so later per-mask materialization cannot fail).
fn validate(base: &CmosCell, dynamic: &[DynamicDefect]) -> Result<(), DefectError> {
    assert!(
        dynamic.len() <= MAX_DYNAMIC,
        "at most {MAX_DYNAMIC} dynamic defects per cell, got {}",
        dynamic.len()
    );
    let mut probe = base.clone();
    for d in dynamic {
        probe.inject(d.defect)?;
    }
    Ok(())
}

/// Table-backed evaluator for a cell with dynamically activated
/// defects. Compiled tables are keyed by the currently-active defect
/// subset, with a pre-resolved fast path for the all-inactive mask;
/// evaluation state (stage memories + previous signal vector) persists
/// across subset changes. Bit-identical to [`DynamicRefCell`] on every
/// stimulus sequence.
#[derive(Clone, Debug)]
pub struct DynamicCell {
    base: CmosCell,
    dynamic: Vec<DynamicDefect>,
    /// Mask-0 table (base cell, no dynamic defect active).
    base_table: Arc<CellTable>,
    /// Lazily resolved tables for the other masks, backed by the
    /// process-wide [`CellTable::cached`] memo.
    tables: HashMap<u32, Arc<CellTable>>,
    /// True iff *every* subset of the dynamic defects compiles to a
    /// purely combinational table, so state upkeep can be skipped and
    /// each evaluation is one truth-table lookup. Only established when
    /// the subset space is small enough to enumerate upfront.
    stateless: bool,
    /// Per-stage retained value, as in [`crate::CachedCell`].
    mem: Vec<bool>,
    /// Previous evaluation's packed signal vector.
    prev: u32,
}

impl DynamicCell {
    /// Builds the evaluator.
    ///
    /// # Errors
    ///
    /// Returns [`DefectError`] if any dynamic defect references a
    /// stage, transistor or net node that does not exist in `base`.
    ///
    /// # Panics
    ///
    /// Panics if more than 16 dynamic defects are supplied.
    pub fn new(base: CmosCell, dynamic: Vec<DynamicDefect>) -> Result<DynamicCell, DefectError> {
        validate(&base, &dynamic)?;
        let base_table = CellTable::cached(&base);
        let mut tables = HashMap::new();
        // Small subset spaces are enumerated upfront; if every table
        // turns out combinational, evaluation never touches state.
        let stateless = if dynamic.len() <= 6 {
            let mut all_comb = base_table.is_combinational();
            for mask in 1..1u32 << dynamic.len() {
                let t = CellTable::cached(&materialize(&base, &dynamic, mask));
                all_comb &= t.is_combinational();
                tables.insert(mask, t);
            }
            all_comb
        } else {
            false
        };
        let mem = vec![false; base_table.n_stages()];
        Ok(DynamicCell {
            base,
            dynamic,
            base_table,
            tables,
            stateless,
            mem,
            prev: 0,
        })
    }

    /// The base schematic (permanent defects only).
    pub fn base(&self) -> &CmosCell {
        &self.base
    }

    /// The dynamic defects, in mask-bit order.
    pub fn dynamic(&self) -> &[DynamicDefect] {
        &self.dynamic
    }

    /// Evaluates one input vector: advances every activation state
    /// machine, resolves the active-subset table, and evaluates through
    /// it.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from the cell's pin count.
    pub fn eval_cell(&mut self, inputs: &[bool]) -> bool {
        let arity = self.base.kind().arity();
        assert_eq!(
            inputs.len(),
            arity,
            "{} expects {} inputs, got {}",
            self.base.kind(),
            arity,
            inputs.len()
        );
        let mask = advance_mask(&mut self.dynamic);
        let table = if mask == 0 {
            &self.base_table
        } else {
            let (base, dynamic) = (&self.base, &self.dynamic);
            self.tables
                .entry(mask)
                .or_insert_with(|| CellTable::cached(&materialize(base, dynamic, mask)))
        };
        let mut cur = 0u32;
        for (k, &b) in inputs.iter().enumerate() {
            cur |= u32::from(b) << k;
        }
        if self.stateless {
            // Every subset is combinational: no reachable float, no
            // delay line, so the retained state can never be read.
            let t = table
                .pin_truth()
                .expect("stateless implies every subset table collapsed");
            return t >> cur & 1 == 1;
        }
        table.walk(cur, &mut self.mem, &mut self.prev)
    }
}

impl GateBehavior for DynamicCell {
    fn eval(&mut self, inputs: &[bool]) -> bool {
        self.eval_cell(inputs)
    }

    fn reset(&mut self) {
        self.mem.fill(false);
        self.prev = 0;
        for d in &mut self.dynamic {
            d.state.reset();
        }
    }
}

/// Uncached switch-level reference for dynamic activation: every
/// evaluation re-materializes the active-subset schematic and runs the
/// flood-fill evaluator, carrying stage memories and delay lines across
/// subset changes. Slow; exists to pin [`DynamicCell`] down in tests
/// and as the ground-truth semantics.
#[derive(Clone, Debug)]
pub struct DynamicRefCell {
    base: CmosCell,
    dynamic: Vec<DynamicDefect>,
    stage_mem: Vec<bool>,
    delay_prev: Vec<Vec<bool>>,
}

impl DynamicRefCell {
    /// Builds the reference evaluator.
    ///
    /// # Errors
    ///
    /// Returns [`DefectError`] if any dynamic defect references a
    /// stage, transistor or net node that does not exist in `base`.
    pub fn new(base: CmosCell, dynamic: Vec<DynamicDefect>) -> Result<DynamicRefCell, DefectError> {
        validate(&base, &dynamic)?;
        let stage_mem = vec![false; base.stages().len()];
        let delay_prev = base
            .stages()
            .iter()
            .map(|s| vec![false; s.transistors().len()])
            .collect();
        Ok(DynamicRefCell {
            base,
            dynamic,
            stage_mem,
            delay_prev,
        })
    }

    /// Evaluates one input vector through a freshly materialized
    /// switch-level cell for the currently-active defect subset.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from the cell's pin count.
    pub fn eval_cell(&mut self, inputs: &[bool]) -> bool {
        let mask = advance_mask(&mut self.dynamic);
        let mut cell = FaultyCell::new(materialize(&self.base, &self.dynamic, mask));
        cell.set_state(
            std::mem::take(&mut self.stage_mem),
            std::mem::take(&mut self.delay_prev),
        );
        let out = cell.eval_cell(inputs);
        let (mem, delays) = cell.take_state();
        self.stage_mem = mem;
        self.delay_prev = delays;
        out
    }
}

impl GateBehavior for DynamicRefCell {
    fn eval(&mut self, inputs: &[bool]) -> bool {
        self.eval_cell(inputs)
    }

    fn reset(&mut self) {
        self.stage_mem.fill(false);
        for v in &mut self.delay_prev {
            v.fill(false);
        }
        for d in &mut self.dynamic {
            d.state.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::CachedCell;
    use dta_logic::GateKind;

    /// Deterministic stimulus source, same family as the table tests.
    struct Lcg(u64);

    impl Lcg {
        fn next_inputs(&mut self, arity: usize) -> Vec<bool> {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (0..arity).map(|k| self.0 >> (33 + k) & 1 == 1).collect()
        }
    }

    /// Drives the cached and uncached dynamic evaluators through the
    /// same stimulus sequence (with a mid-sequence power cycle) and
    /// requires bit-identical outputs. Both sides build their own
    /// `ActivationState`s from the same `(activation, seed)` pairs, so
    /// they see the same activation sequence by construction.
    fn assert_dynamic_matches_reference(
        base: &CmosCell,
        dynamic: &[(Defect, Activation, u64)],
        label: &str,
    ) {
        let build = |items: &[(Defect, Activation, u64)]| -> Vec<DynamicDefect> {
            items
                .iter()
                .map(|&(d, a, s)| DynamicDefect::new(d, a, s))
                .collect()
        };
        let mut fast = DynamicCell::new(base.clone(), build(dynamic)).unwrap();
        let mut slow = DynamicRefCell::new(base.clone(), build(dynamic)).unwrap();
        let mut lcg = Lcg(0xD1A ^ label.len() as u64);
        for step in 0..300 {
            if step == 150 {
                fast.reset();
                slow.reset();
            }
            let v = lcg.next_inputs(base.kind().arity());
            assert_eq!(
                fast.eval_cell(&v),
                slow.eval_cell(&v),
                "{label}: diverged at step {step} on {v:?}"
            );
        }
    }

    fn for_every_site(activation: impl Fn(u64) -> Activation, class: &str) {
        for kind in GateKind::ALL {
            let base = CmosCell::for_gate(kind);
            for (i, defect) in base.defect_sites().into_iter().enumerate() {
                let act = activation(i as u64);
                assert_dynamic_matches_reference(
                    &base,
                    &[(defect, act, 0xACE0 + i as u64)],
                    &format!("{class} {kind} + {defect}"),
                );
            }
        }
    }

    #[test]
    fn permanent_class_matches_reference_exhaustively() {
        for_every_site(|_| Activation::Permanent, "permanent");
    }

    #[test]
    fn transient_class_matches_reference_exhaustively() {
        // Sweep the probability across sites so both rare and frequent
        // activation patterns are exercised.
        for_every_site(
            |i| Activation::Transient {
                per_eval_probability: [0.05, 0.5, 0.95][i as usize % 3],
            },
            "transient",
        );
    }

    #[test]
    fn intermittent_class_matches_reference_exhaustively() {
        for_every_site(
            |i| Activation::Intermittent {
                period: 2 + (i % 5) as u32,
                duty: 1 + (i % 2) as u32,
            },
            "intermittent",
        );
    }

    #[test]
    fn mixed_multi_defect_cells_match_reference() {
        // Several dynamic defects of different classes in one cell,
        // including shared-site conflicts resolved by injection order.
        for kind in [GateKind::Nand2, GateKind::Xor2, GateKind::Oai22] {
            let base = CmosCell::for_gate(kind);
            let sites = base.defect_sites();
            let picks: Vec<(Defect, Activation, u64)> = sites
                .iter()
                .step_by(sites.len() / 3)
                .take(3)
                .enumerate()
                .map(|(i, &d)| {
                    let act = match i {
                        0 => Activation::Permanent,
                        1 => Activation::Transient {
                            per_eval_probability: 0.3,
                        },
                        _ => Activation::Intermittent { period: 4, duty: 2 },
                    };
                    (d, act, 77 + i as u64)
                })
                .collect();
            assert_dynamic_matches_reference(&base, &picks, &format!("mixed {kind}"));
        }
    }

    #[test]
    fn dynamic_on_top_of_permanent_base_matches_reference() {
        // A base cell that already carries a permanent defect, plus a
        // transient one: the mask-0 fast path goes to the *faulty* base
        // table, not the healthy cell.
        let mut base = CmosCell::for_gate(GateKind::Oai22);
        base.inject(Defect::Open {
            stage: 0,
            transistor: 4,
        })
        .unwrap();
        let transient = (
            Defect::Short {
                stage: 0,
                transistor: 1,
            },
            Activation::Transient {
                per_eval_probability: 0.4,
            },
            9,
        );
        assert_dynamic_matches_reference(&base, &[transient], "permanent base + transient");
    }

    #[test]
    fn always_on_transient_equals_static_injection() {
        // p = 1 makes the dynamic path equivalent to static injection;
        // p = 0 makes it equivalent to the untouched base.
        for kind in [GateKind::Not, GateKind::Nand2, GateKind::Xor2] {
            let base = CmosCell::for_gate(kind);
            for defect in base.defect_sites() {
                let mut injected = base.clone();
                injected.inject(defect).unwrap();
                let mut always = DynamicCell::new(
                    base.clone(),
                    vec![DynamicDefect::new(
                        defect,
                        Activation::Transient {
                            per_eval_probability: 1.0,
                        },
                        3,
                    )],
                )
                .unwrap();
                let mut as_static = CachedCell::new(&injected);
                let mut never = DynamicCell::new(
                    base.clone(),
                    vec![DynamicDefect::new(
                        defect,
                        Activation::Transient {
                            per_eval_probability: 0.0,
                        },
                        3,
                    )],
                )
                .unwrap();
                let mut healthy = CachedCell::new(&base);
                let mut lcg = Lcg(0xF00D);
                for _ in 0..120 {
                    let v = lcg.next_inputs(kind.arity());
                    assert_eq!(
                        always.eval_cell(&v),
                        as_static.eval_cell(&v),
                        "{kind} + {defect}: p=1 must equal static injection"
                    );
                    assert_eq!(
                        never.eval_cell(&v),
                        healthy.eval_cell(&v),
                        "{kind} + {defect}: p=0 must equal the base cell"
                    );
                }
            }
        }
    }

    #[test]
    fn reset_replays_identical_sequence() {
        let base = CmosCell::for_gate(GateKind::Xor2);
        let defect = base.defect_sites()[7];
        let mut cell = DynamicCell::new(
            base.clone(),
            vec![DynamicDefect::new(
                defect,
                Activation::Transient {
                    per_eval_probability: 0.5,
                },
                11,
            )],
        )
        .unwrap();
        let stim: Vec<Vec<bool>> = {
            let mut lcg = Lcg(5);
            (0..200).map(|_| lcg.next_inputs(2)).collect()
        };
        let first: Vec<bool> = stim.iter().map(|v| cell.eval_cell(v)).collect();
        cell.reset();
        let second: Vec<bool> = stim.iter().map(|v| cell.eval_cell(v)).collect();
        assert_eq!(first, second, "reset must replay the activation stream");
    }

    #[test]
    fn out_of_range_dynamic_site_is_rejected() {
        let base = CmosCell::for_gate(GateKind::Not);
        let bogus = DynamicDefect::new(
            Defect::Open {
                stage: 7,
                transistor: 0,
            },
            Activation::Permanent,
            0,
        );
        assert!(DynamicCell::new(base.clone(), vec![bogus.clone()]).is_err());
        assert!(DynamicRefCell::new(base, vec![bogus]).is_err());
    }
}
