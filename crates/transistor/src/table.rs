//! Memoized truth tables for faulty cells: reconstruct once, evaluate
//! by table lookup forever after.
//!
//! Defect campaigns evaluate the same handful of faulty cells millions
//! of times (every synapse of every forward pass of every training
//! epoch). [`FaultyCell`] re-runs the switch-level flood fill on each
//! call; this module instead compiles the cell's reconstructed
//! [`BBlockExpr`]s (see [`crate::reconstruct`]) into per-stage bit
//! tables **once**, shares them through a process-wide cache keyed by
//! `(gate kind, defect set)`, and evaluates through the tables.
//!
//! The tables capture the full switch-level semantics, including the
//! paper's memory effect: a stage whose `Z_P`/`Z_N` networks can both
//! be off keeps its previous value, and a delay defect makes a stage
//! read the *previous* evaluation's signals. [`CachedCell`] is
//! therefore bit-identical to [`FaultyCell`] on every stimulus
//! sequence — enforced exhaustively by the tests below.
//!
//! Purely combinational faulty cells (no floating state, no delay)
//! additionally collapse to a single ≤16-entry pin truth table, which
//! [`TruthTable64`] evaluates 64 stimulus lanes at a time for the
//! batched forward path.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use dta_logic::{Behavior64, GateBehavior, GateKind};

use crate::cell::{CmosCell, Health, Signal};
use crate::reconstruct::reconstruct_cell;

/// The compiled B-block table of one stage.
///
/// Signals are packed into a bit vector: bit `k` is pin `k`, bit
/// `arity + j` is the output of stage `j`. A stage with `n_bits`
/// relevant signals (its pins plus all earlier stages) indexes its
/// tables with those low bits; a stage containing a delay defect
/// doubles the index with the *previous* evaluation's packed signals in
/// the high half. The largest library cell (arity 4, 3 stages) needs
/// 2^12 = 4096 entries — small enough to enumerate exhaustively.
#[derive(Clone, Debug)]
struct StageTable {
    /// Number of live signal bits: `arity + stage_index`.
    n_bits: u32,
    /// True if any transistor of this stage has a delay defect, i.e.
    /// the index space is doubled by the previous signal vector.
    delayed: bool,
    /// Bitmap: index conducts from Vdd to the stage output.
    zp: Vec<u64>,
    /// Bitmap: index conducts from Vss to the stage output.
    zn: Vec<u64>,
}

impl StageTable {
    fn index(&self, cur: u32, prev: u32) -> usize {
        let mask = (1u32 << self.n_bits) - 1;
        let c = (cur & mask) as usize;
        if self.delayed {
            ((prev & mask) as usize) << self.n_bits | c
        } else {
            c
        }
    }

    fn bit(map: &[u64], i: usize) -> bool {
        map[i / 64] >> (i % 64) & 1 == 1
    }

    /// Whether the index drives the output at all (else: memory).
    fn drives(&self, cur: u32, prev: u32) -> bool {
        let i = self.index(cur, prev);
        Self::bit(&self.zn, i) || Self::bit(&self.zp, i)
    }

    /// B-block resolution through the table: ground wins, then the
    /// pull-up, else the stage keeps `mem`.
    fn resolve(&self, cur: u32, prev: u32, mem: bool) -> bool {
        let i = self.index(cur, prev);
        if Self::bit(&self.zn, i) {
            false
        } else if Self::bit(&self.zp, i) {
            true
        } else {
            mem
        }
    }
}

/// Canonical description of a cell's injected defect state, used as the
/// process-wide cache key. Bridges are sorted and deduplicated so the
/// injection order cannot split one electrical state into two entries.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
struct CellKey {
    kind: GateKind,
    faults: Vec<u32>,
}

impl CellKey {
    fn of(cell: &CmosCell) -> CellKey {
        let mut faults = Vec::new();
        for (si, stage) in cell.stages().iter().enumerate() {
            for (ti, t) in stage.transistors().iter().enumerate() {
                let code = match t.health() {
                    Health::Healthy => 0,
                    Health::Open => 1,
                    Health::Shorted => 2,
                } | (u32::from(t.is_delayed()) << 2);
                if code != 0 {
                    faults.push((si as u32) << 16 | (ti as u32) << 8 | code);
                }
            }
            let mut bridges: Vec<u32> = stage
                .bridges()
                .iter()
                .map(|&(a, b)| {
                    let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
                    1 << 31 | (si as u32) << 16 | (lo as u32) << 8 | hi as u32
                })
                .collect();
            bridges.sort_unstable();
            bridges.dedup();
            faults.extend(bridges);
        }
        CellKey {
            kind: cell.kind(),
            faults,
        }
    }
}

/// The fully compiled truth tables of one (possibly faulty) cell.
#[derive(Clone, Debug)]
pub struct CellTable {
    kind: GateKind,
    arity: usize,
    stages: Vec<StageTable>,
    /// `Some(t)` iff the cell is purely combinational under its defect
    /// set (no delay defect, no reachable floating state): bit `v` of
    /// `t` is the output for packed pin assignment `v`.
    pin_truth: Option<u64>,
}

impl CellTable {
    /// Compiles the cell's reconstructed stage expressions into bit
    /// tables by exhaustive enumeration of the (current, previous)
    /// signal space.
    pub fn build(cell: &CmosCell) -> CellTable {
        let kind = cell.kind();
        let arity = kind.arity();
        let exprs = reconstruct_cell(cell).expect("every library cell reconstructs");

        let mut stages = Vec::with_capacity(exprs.len());
        for (si, e) in exprs.iter().enumerate() {
            let n_bits = (arity + si) as u32;
            let delayed = e.zp.has_delay() || e.zn.has_delay();
            let idx_bits = if delayed { 2 * n_bits } else { n_bits };
            let size = 1usize << idx_bits;
            let words = size.div_ceil(64);
            let mut zp = vec![0u64; words];
            let mut zn = vec![0u64; words];
            for idx in 0..size {
                let cur = (idx as u32) & ((1 << n_bits) - 1);
                let prev = (idx >> n_bits) as u32;
                let bit_of = |v: u32, s: Signal| match s {
                    Signal::Pin(k) => v >> k & 1 == 1,
                    Signal::Stage(j) => v >> (arity + j) & 1 == 1,
                };
                let sig_of = |s: Signal| bit_of(cur, s);
                let prev_of = |s: Signal| bit_of(prev, s);
                let p = e.zp.eval_with_prev(&sig_of, &prev_of);
                let n = e.zn.eval_with_prev(&sig_of, &prev_of);
                if p {
                    zp[idx / 64] |= 1 << (idx % 64);
                }
                if n {
                    zn[idx / 64] |= 1 << (idx % 64);
                }
            }
            stages.push(StageTable {
                n_bits,
                delayed,
                zp,
                zn,
            });
        }

        // Combinational collapse. With no delay defect, stage outputs
        // are pure functions of the pins *as long as no stage floats on
        // a reachable signal vector*: stage 0 sees only pins, and by
        // induction stage `i` sees pins plus earlier outputs that are
        // themselves pin functions. Pass-logic stages (XOR2 and
        // friends) do float on vectors that healthy operation never
        // produces, so reachability — not the full signal space — is
        // the correct test.
        let pin_truth = if stages.iter().any(|s| s.delayed) {
            None
        } else {
            let mut t = Some(0u64);
            'pins: for v in 0..1u32 << arity {
                let mut cur = v;
                let mut out = false;
                for (si, st) in stages.iter().enumerate() {
                    if !st.drives(cur, 0) {
                        t = None;
                        break 'pins;
                    }
                    out = st.resolve(cur, 0, false);
                    cur |= u32::from(out) << (arity + si);
                }
                t = t.map(|t| t | u64::from(out) << v);
            }
            t
        };

        CellTable {
            kind,
            arity,
            stages,
            pin_truth,
        }
    }

    /// Returns the shared table for this cell's `(kind, defect set)`,
    /// building and memoizing it on first use. The cache is
    /// process-wide: every campaign cell, fold and epoch that draws the
    /// same faulty cell reuses one compiled table.
    pub fn cached(cell: &CmosCell) -> Arc<CellTable> {
        static CACHE: OnceLock<Mutex<HashMap<CellKey, Arc<CellTable>>>> = OnceLock::new();
        let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
        let key = CellKey::of(cell);
        if let Some(hit) = cache.lock().unwrap().get(&key) {
            return Arc::clone(hit);
        }
        // Build outside the lock so concurrent campaign workers compile
        // distinct cells in parallel; a racing duplicate build of the
        // same key is harmless and the first insert wins.
        let built = Arc::new(CellTable::build(cell));
        Arc::clone(cache.lock().unwrap().entry(key).or_insert(built))
    }

    /// The gate kind this table was compiled from.
    pub fn kind(&self) -> GateKind {
        self.kind
    }

    /// Number of input pins.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// True if the faulty cell is purely combinational: no delay defect
    /// and no reachable memory state.
    pub fn is_combinational(&self) -> bool {
        self.pin_truth.is_some()
    }

    /// The collapsed pin truth table (bit `v` = output for packed pin
    /// assignment `v`), if the cell is combinational.
    pub fn pin_truth(&self) -> Option<u64> {
        self.pin_truth
    }

    /// A 64-lane evaluator over the collapsed pin table, if the cell is
    /// combinational.
    pub fn truth64(&self) -> Option<TruthTable64> {
        self.pin_truth.map(|table| TruthTable64 {
            arity: self.arity,
            table,
        })
    }

    /// The collapsed pin table as a LUT instruction patch word, if the
    /// cell is combinational: this is the permanent-defect lowering for
    /// the compiled instruction-stream backend (`dta_logic::LutExec`),
    /// which overwrites the faulty gate's truth word in place so the
    /// defective sweep costs exactly as much as the healthy one. `None`
    /// when the defect set leaves reachable memory state or a delay
    /// defect — those must stay on per-lane behavioral evaluation.
    pub fn lut_patch(&self) -> Option<u16> {
        debug_assert!(self.arity <= 4, "library cells have at most 4 pins");
        self.pin_truth.map(|t| t as u16)
    }

    /// Number of stages in the compiled cell.
    pub(crate) fn n_stages(&self) -> usize {
        self.stages.len()
    }

    /// One full stage walk with externally held state, used by the
    /// dynamic-activation evaluator which swaps tables between
    /// evaluations. Unlike [`CachedCell::eval_cell`] this never takes
    /// the `pin_truth` shortcut: `mem`/`prev` must stay current so a
    /// *later* evaluation under a stateful defect subset reads correct
    /// history.
    pub(crate) fn walk(&self, pins: u32, mem: &mut [bool], prev: &mut u32) -> bool {
        let mut cur = pins;
        let mut out = false;
        for (si, st) in self.stages.iter().enumerate() {
            out = st.resolve(cur, *prev, mem[si]);
            mem[si] = out;
            cur |= u32::from(out) << (self.arity + si);
        }
        *prev = cur;
        out
    }
}

/// Drop-in replacement for [`FaultyCell`] that evaluates through the
/// memoized [`CellTable`] instead of re-running the switch-level flood
/// fill. Bit-identical to the switch-level evaluator on every stimulus
/// sequence, including memory-effect and delay-defect cells.
///
/// [`FaultyCell`]: crate::FaultyCell
#[derive(Clone, Debug)]
pub struct CachedCell {
    table: Arc<CellTable>,
    /// Per-stage retained value for floating outputs (power-on: 0).
    mem: Vec<bool>,
    /// Previous evaluation's packed signal vector, read by delayed
    /// stages (power-on: all 0, like the switch-level evaluator).
    prev: u32,
}

impl CachedCell {
    /// Builds an evaluator for `cell`, fetching (or compiling) its
    /// shared table from the process-wide cache.
    pub fn new(cell: &CmosCell) -> CachedCell {
        CachedCell::from_table(CellTable::cached(cell))
    }

    /// Builds an evaluator over an already-compiled table.
    pub fn from_table(table: Arc<CellTable>) -> CachedCell {
        let mem = vec![false; table.stages.len()];
        CachedCell {
            table,
            mem,
            prev: 0,
        }
    }

    /// The shared compiled table.
    pub fn table(&self) -> &Arc<CellTable> {
        &self.table
    }

    /// Evaluates the cell for one input vector, updating the internal
    /// memory/delay state exactly like the switch-level evaluator.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from the cell's arity.
    pub fn eval_cell(&mut self, inputs: &[bool]) -> bool {
        let arity = self.table.arity;
        assert_eq!(
            inputs.len(),
            arity,
            "{:?} expects {} inputs, got {}",
            self.table.kind,
            arity,
            inputs.len()
        );
        let mut cur = 0u32;
        for (k, &b) in inputs.iter().enumerate() {
            cur |= u32::from(b) << k;
        }
        // Combinational fast path: the collapsed pin truth table replaces
        // the stage walk. `pin_truth` is only `Some` when every stage is
        // delay-free and float-free on reachable vectors, so the output
        // cannot depend on `mem`/`prev` and skipping their upkeep is
        // exact.
        if let Some(t) = self.table.pin_truth {
            return (t >> cur) & 1 == 1;
        }
        let mut out = false;
        for (si, st) in self.table.stages.iter().enumerate() {
            out = st.resolve(cur, self.prev, self.mem[si]);
            self.mem[si] = out;
            cur |= u32::from(out) << (arity + si);
        }
        self.prev = cur;
        out
    }
}

impl GateBehavior for CachedCell {
    fn eval(&mut self, inputs: &[bool]) -> bool {
        self.eval_cell(inputs)
    }

    fn reset(&mut self) {
        self.mem.fill(false);
        self.prev = 0;
    }
}

/// 64-lane evaluator for a combinational faulty cell: the collapsed
/// pin truth table applied as a sum of minterm masks. Plugs into
/// [`dta_logic::Simulator64`] as a gate-behavior override.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TruthTable64 {
    arity: usize,
    table: u64,
}

impl TruthTable64 {
    /// Builds an evaluator from an explicit pin truth table (bit `v` =
    /// output for packed pin assignment `v`).
    pub fn new(arity: usize, table: u64) -> TruthTable64 {
        assert!(arity <= 6, "pin truth table limited to 64 entries");
        TruthTable64 { arity, table }
    }

    /// Scalar lookup, for tests and the one-lane fallback.
    pub fn eval_scalar(&self, inputs: &[bool]) -> bool {
        let mut v = 0u32;
        for (k, &b) in inputs.iter().enumerate() {
            v |= u32::from(b) << k;
        }
        self.table >> v & 1 == 1
    }
}

impl Behavior64 for TruthTable64 {
    fn eval64(&mut self, inputs: &[u64]) -> u64 {
        assert_eq!(
            inputs.len(),
            self.arity,
            "table expects {} inputs, got {}",
            self.arity,
            inputs.len()
        );
        let mut out = 0u64;
        for v in 0..1u32 << self.arity {
            if self.table >> v & 1 == 1 {
                let mut lanes = !0u64;
                for (k, &lane) in inputs.iter().enumerate() {
                    lanes &= if v >> k & 1 == 1 { lane } else { !lane };
                }
                out |= lanes;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::FaultyCell;

    /// Tiny deterministic stimulus source (no RNG dependency needed).
    struct Lcg(u64);

    impl Lcg {
        fn next_inputs(&mut self, arity: usize) -> Vec<bool> {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (0..arity).map(|k| self.0 >> (33 + k) & 1 == 1).collect()
        }
    }

    fn assert_matches_switch_level(cell: &CmosCell, label: &str) {
        let mut fast = CachedCell::new(cell);
        let mut slow = FaultyCell::new(cell.clone());
        let mut lcg = Lcg(0x5EED ^ label.len() as u64);
        for step in 0..400 {
            if step == 200 {
                // Power cycle both models mid-sequence.
                fast.reset();
                slow.reset();
            }
            let v = lcg.next_inputs(cell.kind().arity());
            assert_eq!(
                fast.eval_cell(&v),
                slow.eval_cell(&v),
                "{label}: diverged at step {step} on {v:?}"
            );
        }
    }

    #[test]
    fn healthy_cells_match_switch_level_and_are_combinational() {
        for kind in GateKind::ALL {
            let cell = CmosCell::for_gate(kind);
            assert_matches_switch_level(&cell, &format!("healthy {kind}"));
            let table = CellTable::build(&cell);
            let truth = table
                .pin_truth()
                .unwrap_or_else(|| panic!("healthy {kind} must be combinational"));
            for v in 0..1u32 << kind.arity() {
                let bits: Vec<bool> = (0..kind.arity()).map(|k| v >> k & 1 == 1).collect();
                assert_eq!(
                    truth >> v & 1 == 1,
                    kind.eval(&bits),
                    "healthy {kind} truth table wrong at {bits:?}"
                );
            }
        }
    }

    #[test]
    fn every_single_defect_matches_switch_level() {
        // Exhaustive over the whole library and every defect site:
        // opens, shorts, bridges and delays, including every cell that
        // becomes stateful.
        for kind in GateKind::ALL {
            let healthy = CmosCell::for_gate(kind);
            for defect in healthy.defect_sites() {
                let mut cell = healthy.clone();
                cell.inject(defect).unwrap();
                assert_matches_switch_level(&cell, &format!("{kind} + {defect}"));
            }
        }
    }

    #[test]
    fn defect_pairs_match_switch_level() {
        // Defect accumulation (two in one cell) through the same tables.
        for kind in [GateKind::Nand2, GateKind::Oai22, GateKind::Xor2] {
            let healthy = CmosCell::for_gate(kind);
            let sites = healthy.defect_sites();
            for (i, &a) in sites.iter().enumerate().step_by(3) {
                for &b in sites.iter().skip(i + 1).step_by(5) {
                    let mut cell = healthy.clone();
                    cell.inject(a).unwrap();
                    let _ = cell.inject(b); // second site may clash; fine
                    assert_matches_switch_level(&cell, &format!("{kind} + {a} + {b}"));
                }
            }
        }
    }

    #[test]
    fn paper_memory_effect_on_oai22_through_cache() {
        // The Figure 8 scenario from `eval.rs`, replayed through the
        // compiled table: an open pull-up transistor makes the OAI22
        // output float for some inputs and retain its previous value.
        use crate::defect::Defect;
        let mut cell = CmosCell::for_gate(GateKind::Oai22);
        cell.inject(Defect::Open {
            stage: 0,
            transistor: 4,
        })
        .unwrap();
        let table = CellTable::cached(&cell);
        assert!(!table.is_combinational(), "open pull-up must latch");
        let mut f = CachedCell::from_table(table);
        assert!(!f.eval_cell(&[true, false, true, false]));
        assert!(!f.eval_cell(&[false, false, true, true]), "retains 0");
        assert!(f.eval_cell(&[false, false, false, false]));
        assert!(f.eval_cell(&[false, false, true, true]), "retains 1");
    }

    #[test]
    fn cache_shares_tables_across_equal_defect_sets() {
        use crate::defect::Defect;
        let defect = Defect::Short {
            stage: 0,
            transistor: 1,
        };
        let mut a = CmosCell::for_gate(GateKind::Nand2);
        a.inject(defect).unwrap();
        let mut b = CmosCell::for_gate(GateKind::Nand2);
        b.inject(defect).unwrap();
        assert!(Arc::ptr_eq(&CellTable::cached(&a), &CellTable::cached(&b)));

        let healthy = CmosCell::for_gate(GateKind::Nand2);
        assert!(!Arc::ptr_eq(
            &CellTable::cached(&a),
            &CellTable::cached(&healthy)
        ));
    }

    #[test]
    fn truth64_matches_scalar_lanes() {
        use crate::defect::Defect;
        let mut cell = CmosCell::for_gate(GateKind::Aoi22);
        cell.inject(Defect::Short {
            stage: 0,
            transistor: 0,
        })
        .unwrap();
        let table = CellTable::build(&cell);
        let Some(mut t64) = table.truth64() else {
            panic!("a shorted transistor alone keeps AOI22 combinational");
        };
        let mut lcg = Lcg(99);
        let lanes: Vec<u64> = (0..4)
            .map(|_| {
                let mut w = 0u64;
                for bit in 0..64 {
                    w |= u64::from(lcg.next_inputs(1)[0]) << bit;
                }
                w
            })
            .collect();
        let out = t64.eval64(&lanes);
        for lane in 0..64 {
            let bits: Vec<bool> = lanes.iter().map(|w| w >> lane & 1 == 1).collect();
            assert_eq!(
                out >> lane & 1 == 1,
                t64.eval_scalar(&bits),
                "lane {lane} disagrees with scalar lookup"
            );
        }
    }
}
