//! Property tests: arbitrary defect sets must never break the
//! switch-level evaluator, and the symbolic reconstruction must stay
//! equivalent to it.

use dta_logic::gate::GateBehavior;
use dta_logic::GateKind;
use dta_transistor::reconstruct::ExprCellEvaluator;
use dta_transistor::{CmosCell, Defect, FaultyCell};
use proptest::prelude::*;

fn any_kind() -> impl Strategy<Value = GateKind> {
    prop::sample::select(GateKind::ALL.to_vec())
}

/// Picks up to `n` random defect sites of a cell by index.
fn pick_defects(cell: &CmosCell, picks: &[u16], skip_delays: bool) -> Vec<Defect> {
    let sites: Vec<Defect> = cell
        .defect_sites()
        .into_iter()
        .filter(|d| !skip_delays || !matches!(d, Defect::Delay { .. }))
        .collect();
    picks
        .iter()
        .map(|&p| sites[p as usize % sites.len()])
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn any_defect_set_evaluates_without_panic(
        kind in any_kind(),
        picks in prop::collection::vec(any::<u16>(), 1..6),
        stimulus in prop::collection::vec(any::<u8>(), 1..20),
    ) {
        let mut cell = CmosCell::for_gate(kind);
        cell.inject_all(pick_defects(&cell, &picks, false)).unwrap();
        let mut f = FaultyCell::new(cell);
        for s in stimulus {
            let v: Vec<bool> = (0..kind.arity()).map(|i| s >> i & 1 == 1).collect();
            let _ = f.eval(&v); // must not panic, any output is legal
        }
    }

    #[test]
    fn faulty_cells_are_deterministic_after_reset(
        kind in any_kind(),
        picks in prop::collection::vec(any::<u16>(), 1..4),
        stimulus in prop::collection::vec(any::<u8>(), 1..16),
    ) {
        let mut cell = CmosCell::for_gate(kind);
        cell.inject_all(pick_defects(&cell, &picks, false)).unwrap();
        let mut f = FaultyCell::new(cell);
        let run = |f: &mut FaultyCell| -> Vec<bool> {
            f.reset();
            stimulus
                .iter()
                .map(|&s| {
                    let v: Vec<bool> =
                        (0..kind.arity()).map(|i| s >> i & 1 == 1).collect();
                    f.eval(&v)
                })
                .collect()
        };
        prop_assert_eq!(run(&mut f), run(&mut f));
    }

    #[test]
    fn reconstruction_equivalent_for_random_defect_sets(
        kind in any_kind(),
        picks in prop::collection::vec(any::<u16>(), 1..4),
        stimulus in prop::collection::vec(any::<u8>(), 1..24),
    ) {
        // Delay defects included: they reconstruct as delayed literals.
        let mut cell = CmosCell::for_gate(kind);
        cell.inject_all(pick_defects(&cell, &picks, false)).unwrap();
        let mut switch = FaultyCell::new(cell.clone());
        let mut expr = ExprCellEvaluator::new(&cell).expect("always Some");
        for s in stimulus {
            let v: Vec<bool> = (0..kind.arity()).map(|i| s >> i & 1 == 1).collect();
            prop_assert_eq!(switch.eval(&v), expr.eval(&v), "{:?} at {:?}", kind, v);
        }
    }

    #[test]
    fn healthy_cells_have_complementary_expressions(kind in any_kind()) {
        // In a defect-free gate Z_P and Z_N are complementary for every
        // input: the B-block never floats and never shorts.
        let cell = CmosCell::for_gate(kind);
        let exprs = dta_transistor::reconstruct::reconstruct_cell(&cell).unwrap();
        // Check the first stage exhaustively over its signals (pins only
        // appear in single-stage cells; multi-stage cells are covered by
        // the library equivalence tests).
        let stage_expr = &exprs[0];
        for bits in 0u32..1 << kind.arity() {
            let sig = |s: dta_transistor::Signal| match s {
                dta_transistor::Signal::Pin(k) => bits >> k & 1 == 1,
                dta_transistor::Signal::Stage(_) => false,
            };
            let zp = stage_expr.zp.eval(&sig);
            let zn = stage_expr.zn.eval(&sig);
            // Only meaningful when no Stage refs exist in stage 0, which
            // holds for every cell (stage 0 sees pins only).
            prop_assert!(zp != zn, "{:?}: floating or fighting at {:032b}", kind, bits);
        }
    }
}
