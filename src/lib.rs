#![warn(missing_docs)]

//! **dta** — a defect-tolerant, spatially expanded hardware ANN
//! accelerator, reproducing Olivier Temam's ISCA 2012 paper
//! *"A Defect-Tolerant Accelerator for Emerging High-Performance
//! Applications"* as a pure-Rust stack.
//!
//! This facade crate re-exports the whole workspace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`fixed`] | `dta-fixed` | Q6.10 datapath arithmetic, 16-segment sigmoid |
//! | [`logic`] | `dta-logic` | gate-level netlists, simulation, stuck-at faults |
//! | [`transistor`] | `dta-transistor` | switch-level CMOS cells, transistor defects, B-block reconstruction |
//! | [`circuits`] | `dta-circuits` | adders, multipliers, activation unit, defect injection |
//! | [`datasets`] | `dta-datasets` | the synthetic UCI benchmark suite, Figure 2 catalog |
//! | [`ann`] | `dta-ann` | MLP, back-propagation, fault hooks, hyper-parameter search |
//! | [`core`] | `dta-core` | the accelerator, baselines, cost/processor models, campaigns |
//! | [`systolic`] | `dta-systolic` | weight-stationary systolic MAC array: the second topology |
//!
//! # Quickstart
//!
//! ```
//! use dta::core::accelerator::Accelerator;
//! use dta::ann::{Mlp, Topology};
//! use dta::datasets::suite;
//! use dta::circuits::FaultModel;
//! use rand::SeedableRng;
//!
//! // Train a network for the iris task on the companion core, map it
//! // onto the accelerator, break some silicon, retrain, and classify.
//! let ds = suite::load("iris").unwrap();
//! let idx: Vec<usize> = (0..ds.len()).collect();
//! let mut rng = rand::rngs::StdRng::seed_from_u64(42);
//!
//! let mut accel = Accelerator::new();
//! accel.map_network(Mlp::new(Topology::new(4, 8, 3), 42)).unwrap();
//! accel.retrain(&ds, &idx, 0.2, 0.1, 30, &mut rng).unwrap();
//!
//! accel.inject_defects(4, FaultModel::TransistorLevel, &mut rng).unwrap();
//! accel.retrain(&ds, &idx, 0.2, 0.1, 30, &mut rng).unwrap();
//!
//! let acc = accel.evaluate(&ds, &idx).unwrap();
//! assert!(acc > 0.8, "defect-tolerant after retraining: {acc}");
//! ```

pub use dta_ann as ann;
pub use dta_circuits as circuits;
pub use dta_core as core;
pub use dta_datasets as datasets;
pub use dta_fixed as fixed;
pub use dta_logic as logic;
pub use dta_systolic as systolic;
pub use dta_transistor as transistor;
