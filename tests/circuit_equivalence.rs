//! Cross-crate equivalence: the behavioral Q6.10 datapath, the
//! gate-level circuits, and the switch-level CMOS cells must all agree
//! when healthy — the foundation that makes defect injection meaningful.

use dta::ann::{FaultPlan, Mlp, Topology};
use dta::circuits::{HwAdder, HwMultiplier, HwSigmoid};
use dta::fixed::{Fx, SigmoidLut};
use dta::logic::GateKind;
use dta::transistor::reconstruct::ExprCellEvaluator;
use dta::transistor::{CmosCell, FaultyCell};
use dta_logic::gate::GateBehavior;
use proptest::prelude::*;

fn any_fx() -> impl Strategy<Value = Fx> {
    any::<i16>().prop_map(Fx::from_raw)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn hw_adder_equals_fx(a in any_fx(), b in any_fx()) {
        let mut hw = HwAdder::new();
        prop_assert_eq!(hw.add(a, b), a + b);
    }

    #[test]
    fn hw_multiplier_equals_fx(a in any_fx(), b in any_fx()) {
        let mut hw = HwMultiplier::new();
        prop_assert_eq!(hw.mul(a, b), a * b);
    }

    #[test]
    fn hw_sigmoid_equals_lut(x in any_fx()) {
        let mut hw = HwSigmoid::new();
        prop_assert_eq!(hw.eval(x), SigmoidLut::new().eval(x));
    }

    #[test]
    fn faulty_forward_with_empty_plan_is_fixed_forward(
        seed in 0u64..1000,
        x0 in 0.0f64..1.0, x1 in 0.0f64..1.0, x2 in 0.0f64..1.0
    ) {
        let mlp = Mlp::new(Topology::new(3, 4, 2), seed);
        let lut = SigmoidLut::new();
        let mut plan = FaultPlan::new(90);
        let x = [x0, x1, x2];
        prop_assert_eq!(
            mlp.forward_fixed(&x, &lut),
            mlp.forward_faulty(&x, &lut, &mut plan)
        );
    }
}

#[test]
fn switch_level_cells_equal_library_truth_tables() {
    for kind in GateKind::ALL {
        let mut cell = FaultyCell::new(CmosCell::for_gate(kind));
        for bits in 0u32..1 << kind.arity() {
            let v: Vec<bool> = (0..kind.arity()).map(|i| bits >> i & 1 == 1).collect();
            assert_eq!(cell.eval(&v), kind.eval(&v), "{kind} at {v:?}");
        }
    }
}

#[test]
fn reconstruction_equals_switch_level_for_every_single_defect() {
    for kind in [GateKind::Nand2, GateKind::Aoi22, GateKind::Mux2] {
        let base = CmosCell::for_gate(kind);
        // Every site, including delay defects (delayed literals).
        for defect in base.defect_sites() {
            let mut cell = base.clone();
            cell.inject(defect).unwrap();
            let mut switch = FaultyCell::new(cell.clone());
            let mut expr = ExprCellEvaluator::new(&cell).unwrap();
            // Two sweeps (ascending then descending) exercise memory.
            let sweep: Vec<u32> = (0..1u32 << kind.arity())
                .chain((0..1u32 << kind.arity()).rev())
                .collect();
            for bits in sweep {
                let v: Vec<bool> = (0..kind.arity()).map(|i| bits >> i & 1 == 1).collect();
                assert_eq!(
                    switch.eval(&v),
                    expr.eval(&v),
                    "{kind} with {defect:?} at {v:?}"
                );
            }
        }
    }
}
