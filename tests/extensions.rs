//! Integration coverage for the extension features: deep networks,
//! approximation, on-line training, visibility analysis, and the
//! vectorized simulator — all through the facade crate.

use dta::ann::deep::{DeepMlp, DeepTrainer};
use dta::ann::{Mlp, RegressionSet, RegressionTrainer, Topology};
use dta::circuits::visibility::multiplier_visibility;
use dta::circuits::{FaultModel, HwMultiplier};
use dta::core::accelerator::Accelerator;
use dta::core::large::LargeNetworkMapper;
use dta::datasets::suite;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

#[test]
fn deep_network_maps_and_learns_through_facade() {
    let ds = suite::load("wine").unwrap();
    let idx: Vec<usize> = (0..ds.len()).collect();
    let mut net = DeepMlp::new(&[13, 10, 6, 3], 4);
    let trainer = DeepTrainer::new(0.3, 0.2, 30);
    let mut rng = ChaCha8Rng::seed_from_u64(8);
    trainer.train(&mut net, &ds, &idx, &mut rng);
    let acc = trainer.evaluate(&net, &ds, &idx);
    assert!(acc > 0.9, "deep wine accuracy {acc}");

    // The 3-layer network still maps onto the physical array.
    let mapper = LargeNetworkMapper::new(Topology::accelerator());
    let passes = mapper.passes_for_layers(net.dims());
    assert!((1..=3).contains(&passes), "passes {passes}");
}

#[test]
fn online_and_batch_training_reach_similar_accuracy() {
    let ds = suite::load("iris").unwrap();
    let idx: Vec<usize> = (0..ds.len()).collect();
    let mut rng = ChaCha8Rng::seed_from_u64(3);

    let mut batch = Accelerator::new();
    batch
        .map_network(Mlp::new(Topology::new(4, 8, 3), 21))
        .unwrap();
    batch.retrain(&ds, &idx, 0.3, 0.1, 40, &mut rng).unwrap();
    let batch_acc = batch.evaluate(&ds, &idx).unwrap();

    let mut online = Accelerator::new();
    online
        .map_network(Mlp::new(Topology::new(4, 8, 3), 21))
        .unwrap();
    for pass in 0..15 {
        for s in 0..ds.len() {
            // A coprime stride stands in for the batch trainer's shuffle.
            let sample = &ds.samples()[(s * 7 + pass) % ds.len()];
            online
                .online_step(&sample.features, sample.label, 0.3)
                .unwrap();
        }
    }
    let online_acc = online.evaluate(&ds, &idx).unwrap();
    assert!(
        (batch_acc - online_acc).abs() < 0.15,
        "batch {batch_acc} vs online {online_acc}"
    );
    assert!(online_acc > 0.8);
}

#[test]
fn regression_composes_with_fault_plan() {
    let set = RegressionSet::from_function("ramp", 2, 1, 120, 3, |x| {
        vec![(0.3 * x[0] + 0.5 * x[1]).clamp(0.0, 1.0)]
    });
    let idx: Vec<usize> = (0..set.len()).collect();
    let mut mlp = Mlp::new(Topology::new(2, 6, 1), 2);
    let trainer = RegressionTrainer::new(0.5, 0.3, 60);
    let mut rng = ChaCha8Rng::seed_from_u64(6);
    let mut plan = dta::ann::FaultPlan::new(90);
    plan.inject_random_hidden(6, FaultModel::TransistorLevel, &mut rng);
    trainer.train(&mut mlp, &set, &idx, Some(&mut plan), &mut rng);
    let mse = trainer.mse(&mlp, &set, &idx, Some(&mut plan));
    assert!(mse < 0.01, "faulty ramp fit MSE {mse}");
}

#[test]
fn visibility_distinguishes_fault_models() {
    // Gate-level output-stuck faults tend to be far more visible than
    // the average transistor-level defect; check the aggregate ordering
    // over a batch of seeds.
    let mut trans_total = 0.0;
    let mut gate_total = 0.0;
    for seed in 0..8 {
        let mut hw = HwMultiplier::new();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        hw.inject_random(FaultModel::TransistorLevel, 1, &mut rng);
        trans_total += multiplier_visibility(&mut hw, 300, seed).visible_fraction;

        let mut hw = HwMultiplier::new();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        hw.inject_random(FaultModel::GateLevel, 1, &mut rng);
        gate_total += multiplier_visibility(&mut hw, 300, seed).visible_fraction;
    }
    assert!(
        trans_total <= gate_total + 1.0,
        "transistor {trans_total} vs gate {gate_total}"
    );
}

#[test]
fn mnist_sized_network_trains_and_runs_multiplexed() {
    // The full §IV story: a network too wide for the array is trained on
    // the companion core, then executed chunk-by-chunk on the physical
    // accelerator; the multiplexed path is bit-identical to the direct
    // fixed path, at a pass-count (latency) cost.
    use dta::ann::{ForwardMode, Trainer};
    use dta::fixed::SigmoidLut;

    let ds = suite::mnist_like();
    let idx: Vec<usize> = (0..ds.len()).collect();
    let topo = Topology::new(784, 20, 10);
    let mut mlp = Mlp::new(topo, 12);
    let trainer = Trainer::new(0.3, 0.2, 8, ForwardMode::Fixed);
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    trainer.train(&mut mlp, &ds, &idx, None, &mut rng);
    let direct_acc = trainer.evaluate(&mlp, &ds, &idx, None);
    assert!(direct_acc > 0.85, "mnist-like accuracy {direct_acc}");

    let mut mapper = LargeNetworkMapper::new(Topology::accelerator());
    assert!(mapper.passes(topo) > 1, "must need multiplexing");
    let lut = SigmoidLut::new();
    let mut agree = 0usize;
    for s in (0..ds.len()).step_by(7) {
        let x = &ds.samples()[s].features;
        let direct = mlp.forward_fixed(x, &lut);
        let mapped = mapper.forward(&mlp, x);
        assert_eq!(direct, mapped, "chunked execution must be bit-exact");
        agree += 1;
    }
    assert!(agree > 20);
}
