//! Reproducibility: every experiment path must be bit-deterministic
//! given its seeds, or the paper's figures could not be regenerated.

use dta::ann::{cross_validate, ForwardMode, Trainer};
use dta::ann::{Mlp, Topology};
use dta::circuits::FaultModel;
use dta::core::accelerator::Accelerator;
use dta::core::campaign::{defect_tolerance_curve, CampaignConfig};
use dta::datasets::suite;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

#[test]
fn suite_generation_is_stable() {
    let a = suite::load_all();
    let b = suite::load_all();
    assert_eq!(a, b);
    // A couple of spot values pin the generator across refactors.
    let iris = &a[3];
    assert_eq!(iris.name(), "iris");
    assert_eq!(iris.len(), 150);
}

#[test]
fn training_is_deterministic_per_seed() {
    let ds = suite::load("iris").unwrap();
    let trainer = Trainer::new(0.2, 0.1, 10, ForwardMode::Fixed);
    let run = || {
        let mut mlp = Mlp::new(Topology::new(4, 6, 3), 9);
        let mut rng = ChaCha8Rng::seed_from_u64(77);
        let idx: Vec<usize> = (0..ds.len()).collect();
        trainer.train(&mut mlp, &ds, &idx, None, &mut rng);
        mlp
    };
    assert_eq!(run(), run());
}

#[test]
fn accelerator_defect_injection_is_deterministic() {
    let run = || {
        let mut accel = Accelerator::new();
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        accel.inject_defects(10, FaultModel::TransistorLevel, &mut rng)
    };
    assert_eq!(run(), run());
}

#[test]
fn cross_validation_and_campaign_reproduce() {
    let ds = suite::load("wine").unwrap();
    let trainer = Trainer::new(0.2, 0.1, 8, ForwardMode::Fixed);
    let a = cross_validate(&trainer, &ds, 4, 3, 11, None);
    let b = cross_validate(&trainer, &ds, 4, 3, 11, None);
    assert_eq!(a, b);

    let spec = suite::specs()
        .into_iter()
        .find(|s| s.name == "iris")
        .unwrap();
    let cfg = CampaignConfig {
        defect_counts: vec![0, 6],
        repetitions: 1,
        folds: 2,
        epochs: Some(6),
        model: FaultModel::TransistorLevel,
        seed: 3,
        threads: 1,
        ..CampaignConfig::default()
    };
    assert_eq!(
        defect_tolerance_curve(&spec, &cfg).unwrap(),
        defect_tolerance_curve(&spec, &cfg).unwrap()
    );
}

#[test]
fn gate_level_model_diverges_from_transistor_level() {
    // The paper's Figure 5 premise: the two fault models produce
    // different faulty behavior. Inject the same number of defects with
    // the same seed under both models into 4-bit adders and compare the
    // corruption profile over all inputs.
    use dta::circuits::{AdderCircuit, DefectPlan};
    let adder = AdderCircuit::new(4);
    let mut profiles = Vec::new();
    for model in [FaultModel::TransistorLevel, FaultModel::GateLevel] {
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        let mut plan = DefectPlan::new(model);
        for _ in 0..10 {
            plan.add_random(adder.netlist(), adder.cells(), &mut rng);
        }
        let mut sim = adder.simulator();
        plan.apply(&mut sim);
        let profile: Vec<u64> = (0..256u64)
            .map(|i| {
                let (s, c) = adder.compute(&mut sim, i / 16, i % 16);
                s | (u64::from(c) << 4)
            })
            .collect();
        profiles.push(profile);
    }
    assert_ne!(
        profiles[0], profiles[1],
        "transistor- and gate-level injections must differ in behavior"
    );
}
