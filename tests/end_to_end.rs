//! Cross-crate integration: the full paper pipeline from dataset to
//! defect-tolerant accelerator.

use dta::ann::{cross_validate, ForwardMode, HyperSpace, Mlp, Topology, Trainer};
use dta::circuits::FaultModel;
use dta::core::accelerator::Accelerator;
use dta::core::{CostModel, ProcessorModel};
use dta::datasets::suite;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

#[test]
fn full_pipeline_train_map_inject_retrain() {
    let ds = suite::load("glass").unwrap();
    let idx: Vec<usize> = (0..ds.len()).collect();
    let mut rng = ChaCha8Rng::seed_from_u64(1);

    let mut accel = Accelerator::new();
    accel
        .map_network(Mlp::new(Topology::new(9, 10, 6), 5))
        .unwrap();
    accel.retrain(&ds, &idx, 0.1, 0.1, 60, &mut rng).unwrap();
    let clean = accel.evaluate(&ds, &idx).unwrap();
    assert!(clean > ds.majority_baseline() + 0.1, "clean {clean}");

    accel
        .inject_defects(6, FaultModel::TransistorLevel, &mut rng)
        .unwrap();
    accel.retrain(&ds, &idx, 0.1, 0.1, 60, &mut rng).unwrap();
    let faulty = accel.evaluate(&ds, &idx).unwrap();
    assert!(
        faulty > clean - 0.2,
        "retraining recovers: clean {clean} vs faulty {faulty}"
    );
}

#[test]
fn every_suite_task_fits_and_trains_above_baseline() {
    // A fast sweep: 2-fold CV with few epochs must beat the majority
    // baseline on every one of the 10 Table II tasks.
    for spec in suite::specs() {
        let ds = spec.dataset();
        let trainer = Trainer::new(spec.learning_rate.max(0.2), 0.1, 15, ForwardMode::Fixed);
        let cv = cross_validate(&trainer, &ds, spec.hidden, 2, 3, None);
        assert!(
            cv.mean() > ds.majority_baseline(),
            "{}: cv {} <= baseline {}",
            spec.name,
            cv.mean(),
            ds.majority_baseline()
        );
    }
}

#[test]
fn hyper_search_composes_with_suite() {
    let ds = suite::load("iris").unwrap();
    let space = HyperSpace {
        hidden: vec![4, 8],
        epochs: vec![30],
        learning_rates: vec![0.3],
        momenta: vec![0.2],
    };
    let result = dta::ann::hyper::search(&ds, &space, 3, 1);
    assert!(result.accuracy > 0.8, "iris search acc {}", result.accuracy);
    assert_eq!(result.evaluated, 2);
}

#[test]
fn cost_and_processor_models_are_consistent() {
    let accel = CostModel::calibrated_90nm().report(Topology::accelerator());
    let proc = ProcessorModel::stealey();
    // The three headline numbers of the paper's comparison.
    let ratio = proc.energy_ratio(Topology::accelerator(), &accel);
    assert!(ratio > 500.0, "two orders of magnitude, got {ratio}");
    // The accelerator draws MORE power than the core (4.70 vs 2.78 W)
    // yet wins on energy by finishing ~1650x sooner — the paper's point.
    assert!(accel.power_w > proc.avg_power_w);
    assert!(proc.speedup(Topology::accelerator(), &accel) > 1000.0);
}

#[test]
fn accelerator_geometry_covers_every_suite_task() {
    let geometry = Topology::accelerator();
    for spec in suite::specs() {
        assert!(spec.n_features <= geometry.inputs, "{}", spec.name);
        assert!(spec.n_classes <= geometry.outputs, "{}", spec.name);
    }
}
