#!/usr/bin/env bash
# Regenerates every table/figure of the paper plus the ablations.
# Pass FULL=1 for the paper-scale configurations (hours).
set -euo pipefail
cd "$(dirname "$0")/.."

RUN="cargo run --release -p dta-bench --bin"

$RUN exp_fig2
if [[ "${FULL:-0}" == "1" ]]; then
  $RUN exp_fig5 -- --trials 1000
  $RUN exp_table2 -- --tasks breast,glass,ionosphere,iris,optdigits,robot,sonar,spam,vehicle,wine --full true
  $RUN exp_fig10 -- --tasks all --reps 100 --folds 10 --epochs 0 --counts 0,3,6,9,12,15,18,21,24,27 --checkpoint fig10.ckpt
  $RUN exp_fig11 -- --tasks iris,ionosphere,wine,robot --reps 100 --epochs 0
  $RUN exp_transient -- --tasks iris,wine --reps 10 --folds 3 --epochs 30 --checkpoint transient.ckpt
else
  $RUN exp_fig5 -- --trials 200
  $RUN exp_table2
  $RUN exp_fig10 -- --tasks all --reps 3 --epochs 30
  $RUN exp_fig11
  $RUN exp_transient -- --tasks iris,wine --reps 3 --folds 3 --epochs 30
fi
$RUN exp_table3
$RUN exp_table4
$RUN exp_recovery
$RUN exp_memfault
$RUN exp_systolic
$RUN exp_mission
$RUN exp_scaling
$RUN exp_visibility
$RUN exp_fault_classes
$RUN exp_multiplexed
$RUN exp_deep
$RUN exp_ablation_spatial
$RUN exp_ablation_sigmoid
$RUN exp_ablation_fixed
$RUN exp_ablation_hidden
$RUN exp_ablation_operators
